//! Lennard-Jones 12-6 potential with cutoff (Eq. 1 of the paper).

use super::{PairEnergyVirial, PairPotential, SplitPairKernel};
use crate::atom::Atoms;
use crate::kernels::{self, KernelMode, PairScratch, SplitScratch, CHUNK_ROWS};
use crate::neighbor::{ListKind, NeighborList};
use tofumd_threadpool::ChunkExec;

/// Slab width of the blocked row loops: long enough that the vectorized
/// lane loops dominate their setup and LLVM's own epilogue handles short
/// remainders, small enough that the slab buffers stay in L1.
const ROW_BLOCK: usize = 64;

/// Slab buffers of the blocked row loops, hoisted out of the per-row call
/// so they are initialized once per chunk, not zeroed once per row.
struct BlockedScratch {
    jc: [u32; ROW_BLOCK],
    r2c: [f64; ROW_BLOCK],
    fp: [f64; ROW_BLOCK],
    en: [f64; ROW_BLOCK],
}

impl Default for BlockedScratch {
    fn default() -> Self {
        BlockedScratch {
            jc: [0; ROW_BLOCK],
            r2c: [0.0; ROW_BLOCK],
            fp: [0.0; ROW_BLOCK],
            en: [0.0; ROW_BLOCK],
        }
    }
}

/// `pair_style lj/cut` equivalent: U(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ]
/// for r < r_cut, unshifted (LAMMPS default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjCut {
    /// Well depth.
    pub epsilon: f64,
    /// Zero-crossing distance.
    pub sigma: f64,
    /// Force cutoff.
    pub cutoff: f64,
    /// Which list to consume. `HalfNewton` is the paper's main
    /// configuration; `Full` emulates full-neighbor-list potentials
    /// (Tersoff/DeePMD) for the Fig. 15 extended experiment — the force
    /// field is unchanged but every rank must exchange with all 26
    /// neighbors.
    pub list: ListKind,
    // Precomputed coefficients: f/r = (c12/r^12 - c6/r^6) * 24 eps / r^2 style.
    lj1: f64, // 48 eps sigma^12
    lj2: f64, // 24 eps sigma^6
    lj3: f64, // 4 eps sigma^12
    lj4: f64, // 4 eps sigma^6
    cutsq: f64,
    /// Energy shift making U(r_cut) = 0 (LAMMPS `pair_modify shift yes`).
    /// Zero when unshifted (the benchmark default).
    eshift: f64,
    /// Inner-loop implementation (bit-identical either way).
    mode: KernelMode,
}

impl LjCut {
    /// Build with explicit parameters.
    #[must_use]
    pub fn new(epsilon: f64, sigma: f64, cutoff: f64, list: ListKind) -> Self {
        assert!(epsilon > 0.0 && sigma > 0.0 && cutoff > 0.0);
        let s6 = sigma.powi(6);
        let s12 = s6 * s6;
        LjCut {
            epsilon,
            sigma,
            cutoff,
            list,
            lj1: 48.0 * epsilon * s12,
            lj2: 24.0 * epsilon * s6,
            lj3: 4.0 * epsilon * s12,
            lj4: 4.0 * epsilon * s6,
            cutsq: cutoff * cutoff,
            eshift: 0.0,
            mode: KernelMode::Scalar,
        }
    }

    /// Select the inner-loop implementation ([`KernelMode::Blocked`] for
    /// the lane-structured path; results are bit-identical either way).
    #[must_use]
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active inner-loop implementation.
    #[must_use]
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Enable the energy shift so the pair energy is continuous at the
    /// cutoff (`pair_modify shift yes`). Improves NVE energy conservation;
    /// forces are unchanged.
    #[must_use]
    pub fn shifted(mut self) -> Self {
        let inv6 = 1.0 / self.cutoff.powi(6);
        self.eshift = self.lj3 * inv6 * inv6 - self.lj4 * inv6;
        self
    }

    /// The paper's LJ benchmark configuration (Table 2): sigma = epsilon = 1,
    /// cutoff 2.5, Newton on (half list).
    #[must_use]
    pub fn lammps_bench() -> Self {
        Self::new(1.0, 1.0, 2.5, ListKind::HalfNewton)
    }

    /// Pair energy at distance r (for tests / tabulation).
    #[inline]
    #[must_use]
    pub fn pair_energy(&self, r: f64) -> f64 {
        if r >= self.cutoff {
            return 0.0;
        }
        let inv6 = 1.0 / r.powi(6);
        self.lj3 * inv6 * inv6 - self.lj4 * inv6 - self.eshift
    }

    /// Pair energy at squared distance r² — the kernel-path formulation.
    /// Like LAMMPS `pair_lj_cut`, the energy is built from `1/r²` (which
    /// the force prefactor also needs, so the division is shared) rather
    /// than from the distance: no sqrt, one division. Callers gate on
    /// `r2 < cutsq`; there is no cutoff branch here.
    #[inline]
    #[must_use]
    pub fn pair_energy_r2(&self, r2: f64) -> f64 {
        let inv2 = 1.0 / r2;
        let inv6 = inv2 * inv2 * inv2;
        self.lj3 * inv6 * inv6 - self.lj4 * inv6 - self.eshift
    }

    /// Magnitude of -dU/dr divided by r ("fpair" in LAMMPS terms):
    /// force vector on i from j is `fpair * (xi - xj)`.
    #[inline]
    #[must_use]
    pub fn fpair(&self, r2: f64) -> f64 {
        let inv2 = 1.0 / r2;
        let inv6 = inv2 * inv2 * inv2;
        inv6 * (self.lj1 * inv6 - self.lj2) * inv2
    }

    /// Blocked inner loop of one neighbor row: process the list in
    /// [`ROW_BLOCK`]-wide slabs of branch-free lane loops (gather,
    /// displacement, r², then a fused force-prefactor / pair-energy loop
    /// whose shared `1.0 / r2` costs one division per lane), handing each
    /// slab's accepted pairs — neighbor indices, r², force prefactors,
    /// pair energies, compacted and in neighbor order — to the `slab`
    /// visitor. Every lane runs the exact IEEE op sequence the scalar
    /// path runs on that pair — a short final slab just runs the same
    /// loops with a shorter trip count — and rejected lanes' values are
    /// never read, so the visited stream is the scalar kernel's accept
    /// stream bit-for-bit. The visitor is inlined at each consumer and
    /// sees whole slabs, so consumers can batch their per-pair logging.
    #[inline]
    fn blocked_row(
        &self,
        xi: [f64; 3],
        x: &[[f64; 3]],
        neigh: &[u32],
        scr: &mut BlockedScratch,
        mut slab: impl FnMut(&[u32], &[f64], &[f64], &[f64]),
    ) {
        let cutsq = self.cutsq;
        let BlockedScratch {
            jc,
            r2c,
            fp: fpb,
            en: enb,
        } = scr;
        let (lj1, lj2) = (self.lj1, self.lj2);
        let (lj3, lj4, eshift) = (self.lj3, self.lj4, self.eshift);
        for blk in neigh.chunks(ROW_BLOCK) {
            // Gather + filter: r² for every candidate (the scalar op
            // sequence exactly), with neighbor index and r² compressed to
            // the accepted lanes. The cursor advances via a flag add, so
            // the loop is branch-free — a rejected lane's slot is simply
            // overwritten by the next candidate. The displacement is NOT
            // buffered: the visit loop re-derives it from `x[j]`, still
            // hot in L1 from this pass, with the same subtractions.
            let mut na = 0usize;
            for &j in blk {
                let xj = x[j as usize];
                let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                let rr = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                jc[na] = j;
                r2c[na] = rr;
                na += usize::from(rr < cutsq);
            }
            // The straight-line bodies of `fpair` and `pair_energy_r2`,
            // fused so the `1.0 / r2` both start with is computed once
            // per lane, over the compacted accepted lanes only — dense,
            // branch-free, and exactly the ops the scalar path runs on
            // those pairs.
            let (fp, en) = (&mut fpb[..na], &mut enb[..na]);
            let r2a = &r2c[..na];
            for k in 0..na {
                let inv2 = 1.0 / r2a[k];
                let inv6 = inv2 * inv2 * inv2;
                fp[k] = inv6 * (lj1 * inv6 - lj2) * inv2;
                en[k] = lj3 * inv6 * inv6 - lj4 * inv6 - eshift;
            }
            slab(&jc[..na], r2a, fp, en);
        }
    }

    /// Blocked twin of the serial [`PairPotential::compute`] pass.
    fn compute_blocked(&self, atoms: &mut Atoms, list: &NeighborList) -> PairEnergyVirial {
        let mut energy = 0.0;
        let mut virial = 0.0;
        let half = !matches!(list.kind, ListKind::Full);
        let nlocal = atoms.nlocal;
        let (x, f) = (&atoms.x, &mut atoms.f);
        let mut bscr = BlockedScratch::default();
        for i in 0..nlocal {
            let xi = x[i];
            let mut fi = [0.0f64; 3];
            self.blocked_row(xi, x, list.neighbors(i), &mut bscr, |jc, r2, fp, en| {
                for k in 0..jc.len() {
                    let j = jc[k] as usize;
                    let xj = x[j];
                    let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let fpair = fp[k];
                    fi[0] += dx[0] * fpair;
                    fi[1] += dx[1] * fpair;
                    fi[2] += dx[2] * fpair;
                    if half {
                        f[j][0] -= dx[0] * fpair;
                        f[j][1] -= dx[1] * fpair;
                        f[j][2] -= dx[2] * fpair;
                        energy += en[k];
                        virial += r2[k] * fpair;
                    } else {
                        energy += 0.5 * en[k];
                        virial += 0.5 * r2[k] * fpair;
                    }
                }
            });
            for d in 0..3 {
                f[i][d] += fi[d];
            }
        }
        PairEnergyVirial { energy, virial }
    }
}

impl PairPotential for LjCut {
    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn list_kind(&self) -> ListKind {
        self.list
    }

    fn compute(&self, atoms: &mut Atoms, list: &NeighborList) -> PairEnergyVirial {
        if self.mode == KernelMode::Blocked {
            return self.compute_blocked(atoms, list);
        }
        let mut energy = 0.0;
        let mut virial = 0.0;
        let half = !matches!(list.kind, ListKind::Full);
        let nlocal = atoms.nlocal;
        let cutsq = self.cutsq;
        for i in 0..nlocal {
            let xi = atoms.x[i];
            let mut fi = [0.0f64; 3];
            for &j in list.neighbors(i) {
                let j = j as usize;
                let xj = atoms.x[j];
                let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                if r2 >= cutsq {
                    continue;
                }
                let fpair = self.fpair(r2);
                fi[0] += dx[0] * fpair;
                fi[1] += dx[1] * fpair;
                fi[2] += dx[2] * fpair;
                if half {
                    // Newton's 3rd law: react on j (possibly a ghost whose
                    // force is reverse-communicated later).
                    atoms.f[j][0] -= dx[0] * fpair;
                    atoms.f[j][1] -= dx[1] * fpair;
                    atoms.f[j][2] -= dx[2] * fpair;
                    energy += self.pair_energy_r2(r2);
                    virial += r2 * fpair;
                } else {
                    // Full list: each pair visited twice machine-wide.
                    energy += 0.5 * self.pair_energy_r2(r2);
                    virial += 0.5 * r2 * fpair;
                }
            }
            for d in 0..3 {
                atoms.f[i][d] += fi[d];
            }
        }
        PairEnergyVirial { energy, virial }
    }

    fn compute_chunked(
        &self,
        atoms: &mut Atoms,
        list: &NeighborList,
        exec: &ChunkExec<'_>,
        scratch: &mut PairScratch,
    ) -> PairEnergyVirial {
        let half = !matches!(list.kind, ListKind::Full);
        let nlocal = atoms.nlocal;
        let ntotal = atoms.ntotal();
        let bs = kernels::bucket_size(ntotal);
        let cutsq = self.cutsq;
        let exec = &exec.floored(nlocal);
        let chunks = scratch.prepare(nlocal.div_ceil(CHUNK_ROWS));
        let x = &atoms.x;
        // Phase 1: each chunk logs the updates its rows would perform, in
        // the serial kernel's order — no shared mutation.
        let blocked = self.mode == KernelMode::Blocked;
        exec.for_each_mut(chunks, &|c, log| {
            let row_lo = c * CHUNK_ROWS;
            let row_hi = (row_lo + CHUNK_ROWS).min(nlocal);
            let mut bscr = BlockedScratch::default();
            for i in row_lo..row_hi {
                let xi = x[i];
                let mut fi = [0.0f64; 3];
                if blocked {
                    self.blocked_row(xi, x, list.neighbors(i), &mut bscr, |jc, r2, fp, en| {
                        // One reservation per slab for the ev stream; the
                        // products match the scalar push sites' op order.
                        if half {
                            log.extend_ev(
                                en.iter()
                                    .zip(r2)
                                    .zip(fp)
                                    .map(|((&e, &rr), &fpk)| (e, rr * fpk)),
                            );
                        } else {
                            log.extend_ev(
                                en.iter()
                                    .zip(r2)
                                    .zip(fp)
                                    .map(|((&e, &rr), &fpk)| (0.5 * e, 0.5 * rr * fpk)),
                            );
                        }
                        for k in 0..jc.len() {
                            let j = jc[k];
                            let xj = x[j as usize];
                            let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                            let fpair = fp[k];
                            fi[0] += dx[0] * fpair;
                            fi[1] += dx[1] * fpair;
                            fi[2] += dx[2] * fpair;
                            if half {
                                log.push_force(
                                    bs,
                                    j,
                                    [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                                );
                            }
                        }
                    });
                    log.push_force(bs, i as u32, fi);
                    continue;
                }
                for &j in list.neighbors(i) {
                    let j = j as usize;
                    let xj = x[j];
                    let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                    if r2 >= cutsq {
                        continue;
                    }
                    let fpair = self.fpair(r2);
                    fi[0] += dx[0] * fpair;
                    fi[1] += dx[1] * fpair;
                    fi[2] += dx[2] * fpair;
                    if half {
                        log.push_force(
                            bs,
                            j as u32,
                            [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                        );
                        log.push_ev(self.pair_energy_r2(r2), r2 * fpair);
                    } else {
                        log.push_ev(0.5 * self.pair_energy_r2(r2), 0.5 * r2 * fpair);
                    }
                }
                log.push_force(bs, i as u32, fi);
            }
        });
        // Phase 2: replay scatters (parallel over disjoint target ranges)
        // and fold energy/virial in the serial addition order.
        kernels::replay_forces(chunks, &mut atoms.f, exec);
        let (energy, virial) = kernels::fold_ev(chunks);
        PairEnergyVirial { energy, virial }
    }

    fn as_split(&self) -> Option<&dyn SplitPairKernel> {
        Some(self)
    }
}

impl SplitPairKernel for LjCut {
    fn log_rows(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        flags: &[bool],
        select: bool,
        exec: &ChunkExec<'_>,
        scratch: &mut SplitScratch,
    ) {
        let half = !matches!(list.kind, ListKind::Full);
        let nlocal = atoms.nlocal;
        let cutsq = self.cutsq;
        let bs = scratch.bs();
        let x = &atoms.x;
        let blocked = self.mode == KernelMode::Blocked;
        let exec = &exec.floored(nlocal);
        let logs = scratch.side_mut(select);
        exec.for_each_mut(logs, &|c, log| {
            let row_lo = c * CHUNK_ROWS;
            let row_hi = (row_lo + CHUNK_ROWS).min(nlocal);
            let mut bscr = BlockedScratch::default();
            for i in row_lo..row_hi {
                if flags[i] != select {
                    continue;
                }
                let row = i as u32;
                let xi = x[i];
                let mut fi = [0.0f64; 3];
                if blocked {
                    self.blocked_row(xi, x, list.neighbors(i), &mut bscr, |jc, r2, fp, en| {
                        if half {
                            log.extend_ev(
                                row,
                                en.iter()
                                    .zip(r2)
                                    .zip(fp)
                                    .map(|((&e, &rr), &fpk)| (e, rr * fpk)),
                            );
                        } else {
                            log.extend_ev(
                                row,
                                en.iter()
                                    .zip(r2)
                                    .zip(fp)
                                    .map(|((&e, &rr), &fpk)| (0.5 * e, 0.5 * rr * fpk)),
                            );
                        }
                        for k in 0..jc.len() {
                            let j = jc[k];
                            let xj = x[j as usize];
                            let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                            let fpair = fp[k];
                            fi[0] += dx[0] * fpair;
                            fi[1] += dx[1] * fpair;
                            fi[2] += dx[2] * fpair;
                            if half {
                                log.push_force(
                                    bs,
                                    row,
                                    j,
                                    [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                                );
                            }
                        }
                    });
                    log.push_force(bs, row, row, fi);
                    continue;
                }
                for &j in list.neighbors(i) {
                    let j = j as usize;
                    let xj = x[j];
                    let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                    if r2 >= cutsq {
                        continue;
                    }
                    let fpair = self.fpair(r2);
                    fi[0] += dx[0] * fpair;
                    fi[1] += dx[1] * fpair;
                    fi[2] += dx[2] * fpair;
                    if half {
                        log.push_force(
                            bs,
                            row,
                            j as u32,
                            [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                        );
                        log.push_ev(row, self.pair_energy_r2(r2), r2 * fpair);
                    } else {
                        log.push_ev(row, 0.5 * self.pair_energy_r2(r2), 0.5 * r2 * fpair);
                    }
                }
                log.push_force(bs, row, row, fi);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborList;

    #[test]
    fn minimum_at_two_sixth_sigma() {
        let lj = LjCut::lammps_bench();
        let rmin = 2.0f64.powf(1.0 / 6.0);
        assert!((lj.pair_energy(rmin) - -1.0).abs() < 1e-12);
        // fpair ~ 0 at the minimum.
        assert!(lj.fpair(rmin * rmin).abs() < 1e-10);
    }

    #[test]
    fn force_is_minus_energy_gradient() {
        let lj = LjCut::lammps_bench();
        for &r in &[0.9f64, 1.0, 1.5, 2.0, 2.4] {
            let h = 1e-6;
            let dudr = (lj.pair_energy(r + h) - lj.pair_energy(r - h)) / (2.0 * h);
            let f = lj.fpair(r * r) * r; // |f| with sign: positive = repulsive
            assert!(
                (f + dudr).abs() < 1e-5,
                "force/gradient mismatch at r={r}: f={f}, dU/dr={dudr}"
            );
        }
    }

    fn dimer(r: f64) -> Atoms {
        Atoms::from_positions(vec![[0.0; 3], [r, 0.0, 0.0]], 1)
    }

    #[test]
    fn half_and_full_lists_agree_on_forces_and_energy() {
        let r = 1.2;
        let mut a_half = dimer(r);
        let mut a_full = dimer(r);
        let lj_h = LjCut::lammps_bench();
        let lj_f = LjCut::new(1.0, 1.0, 2.5, ListKind::Full);
        let lh = NeighborList::build(&a_half, [-1.0; 3], [4.0; 3], ListKind::HalfNewton, 2.5, 0.3);
        let lf = NeighborList::build(&a_full, [-1.0; 3], [4.0; 3], ListKind::Full, 2.5, 0.3);
        let eh = lj_h.compute(&mut a_half, &lh);
        let ef = lj_f.compute(&mut a_full, &lf);
        assert!((eh.energy - ef.energy).abs() < 1e-12);
        assert!((eh.virial - ef.virial).abs() < 1e-12);
        for i in 0..2 {
            for d in 0..3 {
                assert!((a_half.f[i][d] - a_full.f[i][d]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn newton_pair_forces_are_opposite() {
        let mut a = dimer(1.1);
        let lj = LjCut::lammps_bench();
        let l = NeighborList::build(&a, [-1.0; 3], [4.0; 3], ListKind::HalfNewton, 2.5, 0.3);
        lj.compute(&mut a, &l);
        for d in 0..3 {
            assert!((a.f[0][d] + a.f[1][d]).abs() < 1e-12);
        }
        // Repulsive at r < 2^(1/6): atom 0 pushed in -x.
        assert!(a.f[0][0] < 0.0);
    }

    #[test]
    fn shifted_energy_is_continuous_at_cutoff() {
        let lj = LjCut::lammps_bench().shifted();
        assert!(lj.pair_energy(2.5 - 1e-9).abs() < 1e-8);
        assert_eq!(lj.pair_energy(2.5), 0.0);
        // Well depth shifts by the (positive) truncation energy.
        let unshifted = LjCut::lammps_bench();
        let rmin = 2.0f64.powf(1.0 / 6.0);
        assert!(lj.pair_energy(rmin) > unshifted.pair_energy(rmin));
        // Forces unchanged by the shift.
        assert_eq!(lj.fpair(1.44), unshifted.fpair(1.44));
    }

    /// Split logging (interior rows, then boundary rows, then merged
    /// replay) must reproduce `compute_chunked` — and hence the serial
    /// kernel — bit for bit, for half and full lists, serial and pooled.
    #[test]
    fn split_log_rows_matches_chunked_bitwise() {
        use crate::kernels::{self, PairScratch, SplitScratch};
        use tofumd_threadpool::SpinPool;
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos = Vec::new();
        for ix in 0..6 {
            for iy in 0..6 {
                for iz in 0..6 {
                    pos.push([
                        ix as f64 * 1.1 + 0.2 * rnd(),
                        iy as f64 * 1.1 + 0.2 * rnd(),
                        iz as f64 * 1.1 + 0.2 * rnd(),
                    ]);
                }
            }
        }
        let mut base = Atoms::from_positions(pos, 1);
        let nlocal = base.nlocal;
        for k in 0..50 {
            base.push_ghost([6.0 + 0.8 * rnd(), 6.2 * rnd(), 6.2 * rnd()], 1, 5000 + k);
        }
        let flags: Vec<bool> = (0..nlocal).map(|i| (i * 2_654_435_761) % 3 != 0).collect();
        let pool = SpinPool::new(4);
        for kind in [ListKind::HalfNewton, ListKind::Full] {
            let lj = LjCut::new(1.0, 1.0, 2.5, kind);
            let list = NeighborList::build(&base, [-1.0; 3], [8.0; 3], kind, 2.5, 0.3);
            let mut a_ref = base.clone();
            let mut scratch = PairScratch::new();
            let ev_ref = lj.compute_chunked(&mut a_ref, &list, &ChunkExec::Serial, &mut scratch);
            for exec in [ChunkExec::Serial, ChunkExec::Pool(&pool)] {
                let mut a = base.clone();
                let mut split = SplitScratch::new();
                split.prepare(nlocal);
                lj.log_rows(&a, &list, &flags, true, &exec, &mut split);
                lj.log_rows(&a, &list, &flags, false, &exec, &mut split);
                kernels::replay_forces_split(&split, &mut a.f, &exec);
                let (energy, virial) = kernels::fold_ev_split(&split);
                assert_eq!(energy.to_bits(), ev_ref.energy.to_bits(), "{kind:?}");
                assert_eq!(virial.to_bits(), ev_ref.virial.to_bits(), "{kind:?}");
                for i in 0..a.ntotal() {
                    for d in 0..3 {
                        assert_eq!(
                            a.f[i][d].to_bits(),
                            a_ref.f[i][d].to_bits(),
                            "{kind:?} force [{i}][{d}]"
                        );
                    }
                }
            }
        }
    }

    /// The blocked inner loop must reproduce the scalar kernel bit for
    /// bit across serial, chunked, and split entry points, including rows
    /// whose neighbor count is not a multiple of the lane width.
    #[test]
    fn blocked_mode_matches_scalar_bitwise() {
        use crate::kernels::{self, KernelMode, PairScratch, SplitScratch};
        use tofumd_threadpool::SpinPool;
        let mut s = 0x0123_4567_89ab_cdefu64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos = Vec::new();
        for ix in 0..5 {
            for iy in 0..5 {
                for iz in 0..5 {
                    pos.push([
                        ix as f64 * 1.05 + 0.3 * rnd(),
                        iy as f64 * 1.05 + 0.3 * rnd(),
                        iz as f64 * 1.05 + 0.3 * rnd(),
                    ]);
                }
            }
        }
        let base = Atoms::from_positions(pos, 1);
        let nlocal = base.nlocal;
        let flags: Vec<bool> = (0..nlocal).map(|i| (i * 2_654_435_761) % 4 != 0).collect();
        let pool = SpinPool::new(4);
        for kind in [ListKind::HalfNewton, ListKind::Full] {
            let scalar = LjCut::new(1.0, 1.0, 2.5, kind);
            let blocked = scalar.with_kernel_mode(KernelMode::Blocked);
            let list = NeighborList::build(&base, [-1.0; 3], [7.0; 3], kind, 2.5, 0.3);
            let mut a_ref = base.clone();
            let ev_ref = scalar.compute(&mut a_ref, &list);
            let mut a_blk = base.clone();
            let ev_blk = blocked.compute(&mut a_blk, &list);
            assert_eq!(ev_blk.energy.to_bits(), ev_ref.energy.to_bits(), "{kind:?}");
            assert_eq!(ev_blk.virial.to_bits(), ev_ref.virial.to_bits(), "{kind:?}");
            assert_eq!(a_blk.f, a_ref.f, "{kind:?} serial forces");
            for exec in [ChunkExec::Serial, ChunkExec::Pool(&pool)] {
                let mut a = base.clone();
                let mut scratch = PairScratch::new();
                let ev = blocked.compute_chunked(&mut a, &list, &exec, &mut scratch);
                assert_eq!(ev.energy.to_bits(), ev_ref.energy.to_bits(), "{kind:?}");
                assert_eq!(ev.virial.to_bits(), ev_ref.virial.to_bits(), "{kind:?}");
                assert_eq!(a.f, a_ref.f, "{kind:?} chunked forces");
                let mut a = base.clone();
                let mut split = SplitScratch::new();
                split.prepare(nlocal);
                blocked.log_rows(&a, &list, &flags, true, &exec, &mut split);
                blocked.log_rows(&a, &list, &flags, false, &exec, &mut split);
                kernels::replay_forces_split(&split, &mut a.f, &exec);
                let (e, v) = kernels::fold_ev_split(&split);
                assert_eq!(e.to_bits(), ev_ref.energy.to_bits(), "{kind:?}");
                assert_eq!(v.to_bits(), ev_ref.virial.to_bits(), "{kind:?}");
                assert_eq!(a.f, a_ref.f, "{kind:?} split forces");
            }
        }
    }

    #[test]
    fn beyond_cutoff_is_zero() {
        let mut a = dimer(2.6);
        let lj = LjCut::lammps_bench();
        let l = NeighborList::build(&a, [-1.0; 3], [5.0; 3], ListKind::HalfNewton, 2.5, 0.3);
        let e = lj.compute(&mut a, &l);
        assert_eq!(e.energy, 0.0);
        assert_eq!(a.f[0], [0.0; 3]);
    }
}
