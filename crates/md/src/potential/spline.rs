//! Natural cubic spline tables.
//!
//! LAMMPS's `pair_style eam` reads tabulated rho(r), phi(r), F(rho) from a
//! potential file (the paper uses `Cu_u3.eam`) and evaluates them through
//! cubic spline interpolation. We reproduce that machinery: the tables here
//! are filled from analytic generating functions (see `eam.rs`) since the
//! proprietary-format file is not shipped, but evaluation goes through the
//! same tabulate-then-spline path.

/// A natural cubic spline over uniformly spaced samples of f on
/// `[x0, x0 + (n-1)*dx]`.
#[derive(Debug, Clone)]
pub struct Spline {
    x0: f64,
    dx: f64,
    inv_dx: f64,
    y: Vec<f64>,
    /// Second derivatives at the knots (natural boundary conditions).
    y2: Vec<f64>,
}

impl Spline {
    /// Tabulate `f` at `n >= 4` uniform points starting at `x0` with
    /// spacing `dx`, and precompute spline coefficients.
    #[must_use]
    pub fn tabulate(x0: f64, dx: f64, n: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(n >= 4, "need at least 4 knots");
        assert!(dx > 0.0);
        let y: Vec<f64> = (0..n).map(|i| f(x0 + i as f64 * dx)).collect();
        let y2 = Self::second_derivatives(&y, dx);
        Spline {
            x0,
            dx,
            inv_dx: 1.0 / dx,
            y,
            y2,
        }
    }

    /// Tridiagonal solve for natural-spline second derivatives.
    fn second_derivatives(y: &[f64], dx: f64) -> Vec<f64> {
        let n = y.len();
        let mut y2 = vec![0.0; n];
        let mut u = vec![0.0; n];
        // Natural boundary: y2[0] = y2[n-1] = 0.
        for i in 1..n - 1 {
            let sig = 0.5;
            let p = sig * y2[i - 1] + 2.0;
            y2[i] = (sig - 1.0) / p;
            let d2 = (y[i + 1] - 2.0 * y[i] + y[i - 1]) / dx;
            u[i] = (6.0 * d2 / (2.0 * dx) - sig * u[i - 1]) / p;
        }
        for i in (1..n - 1).rev() {
            y2[i] = y2[i] * y2[i + 1] + u[i];
        }
        y2
    }

    /// Domain upper bound.
    #[must_use]
    pub fn x_max(&self) -> f64 {
        self.x0 + (self.y.len() - 1) as f64 * self.dx
    }

    /// Interpolated value at `x` (clamped to the table domain, matching
    /// LAMMPS behaviour for out-of-range densities).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let (i, a, b) = self.locate(x);
        let h = self.dx;
        a * self.y[i]
            + b * self.y[i + 1]
            + ((a * a * a - a) * self.y2[i] + (b * b * b - b) * self.y2[i + 1]) * (h * h) / 6.0
    }

    /// Interpolated derivative df/dx at `x`.
    #[must_use]
    pub fn eval_deriv(&self, x: f64) -> f64 {
        let (i, a, b) = self.locate(x);
        let h = self.dx;
        (self.y[i + 1] - self.y[i]) / h
            + ((3.0 * b * b - 1.0) * self.y2[i + 1] - (3.0 * a * a - 1.0) * self.y2[i]) * h / 6.0
    }

    /// Locate the interval containing `x`; returns (index, a, b) with
    /// `a + b == 1` barycentric weights.
    fn locate(&self, x: f64) -> (usize, f64, f64) {
        let n = self.y.len();
        let t = ((x - self.x0) * self.inv_dx).clamp(0.0, (n - 1) as f64 - 1e-12);
        let i = (t.floor() as usize).min(n - 2);
        let b = t - i as f64;
        (i, 1.0 - b, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_linear_exactly() {
        let s = Spline::tabulate(0.0, 0.5, 11, |x| 3.0 * x - 1.0);
        for &x in &[0.0, 0.3, 1.7, 4.9] {
            assert!((s.eval(x) - (3.0 * x - 1.0)).abs() < 1e-10);
            assert!((s.eval_deriv(x) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn approximates_smooth_function() {
        let s = Spline::tabulate(0.5, 0.01, 451, |x| (x * 1.3).sin() / x);
        for i in 0..100 {
            let x = 0.6 + i as f64 * 0.04;
            let exact = (x * 1.3).sin() / x;
            assert!(
                (s.eval(x) - exact).abs() < 1e-6,
                "value error at {x}: {} vs {exact}",
                s.eval(x)
            );
            let h = 1e-5;
            let dnum = ((x + h) * 1.3).sin() / (x + h) - ((x - h) * 1.3).sin() / (x - h);
            let dnum = dnum / (2.0 * h);
            assert!(
                (s.eval_deriv(x) - dnum).abs() < 1e-4,
                "deriv error at {x}: {} vs {dnum}",
                s.eval_deriv(x)
            );
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let s = Spline::tabulate(0.0, 1.0, 5, |x| x * x);
        assert!((s.eval(-2.0) - s.eval(0.0)).abs() < 1e-12);
        assert!((s.eval(99.0) - s.eval(4.0)).abs() < 1e-9);
    }

    #[test]
    fn derivative_consistent_with_value() {
        let s = Spline::tabulate(1.0, 0.05, 101, |x| (-x).exp());
        for i in 1..80 {
            let x = 1.1 + i as f64 * 0.04;
            let h = 1e-6;
            let num = (s.eval(x + h) - s.eval(x - h)) / (2.0 * h);
            assert!(
                (s.eval_deriv(x) - num).abs() < 1e-6,
                "spline self-consistency at {x}"
            );
        }
    }

    #[test]
    fn x_max_matches_domain() {
        let s = Spline::tabulate(2.0, 0.25, 9, |x| x);
        assert!((s.x_max() - 4.0).abs() < 1e-12);
    }
}
