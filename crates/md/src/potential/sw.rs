//! Stillinger-Weber three-body potential (silicon).
//!
//! The class of potentials behind Fig. 15's first extended scenario:
//! many-body force fields (Tersoff, SW, DeePMD) need a **full** neighbor
//! list — every rank must receive ghosts from all 26 neighbors — and,
//! because triplet terms centered on a local atom push on ghost atoms,
//! ghost forces must still be reverse-communicated. The paper's Fig. 11
//! shows exactly this silicon system.
//!
//! Functional form (Stillinger & Weber, PRB 31, 5262 (1985)):
//! `U = sum v2(r) + sum_{j<k} lambda eps (cos t - cos t0)^2 g(r_ij) g(r_ik)`
//! with `v2 = A eps (B (s/r)^4 - 1) exp(s/(r - a s))` and
//! `g(r) = exp(gamma s / (r - a s))`, both cut off smoothly at `r = a s`.

use super::{PairEnergyVirial, PairPotential};
use crate::atom::Atoms;
use crate::neighbor::{ListKind, NeighborList};

/// Stillinger-Weber parameters (single species).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StillingerWeber {
    /// Energy scale, eV.
    pub epsilon: f64,
    /// Length scale, angstrom.
    pub sigma: f64,
    /// Cutoff factor: r_cut = a * sigma.
    pub a: f64,
    /// Three-body strength.
    pub lambda: f64,
    /// Three-body decay.
    pub gamma: f64,
    /// Preferred bond angle cosine (tetrahedral: -1/3).
    pub cos_theta0: f64,
    /// Two-body prefactor A.
    pub big_a: f64,
    /// Two-body repulsion coefficient B.
    pub big_b: f64,
}

impl StillingerWeber {
    /// The original silicon parameterization.
    #[must_use]
    pub fn silicon() -> Self {
        StillingerWeber {
            epsilon: 2.1683,
            sigma: 2.0951,
            a: 1.80,
            lambda: 21.0,
            gamma: 1.20,
            cos_theta0: -1.0 / 3.0,
            big_a: 7.049_556_277,
            big_b: 0.602_224_558_4,
        }
    }

    /// Cutoff distance a*sigma (~3.77 angstrom for silicon).
    #[must_use]
    pub fn r_cut(&self) -> f64 {
        self.a * self.sigma
    }

    /// Two-body energy at distance r.
    #[must_use]
    pub fn v2(&self, r: f64) -> f64 {
        let rc = self.r_cut();
        if r >= rc {
            return 0.0;
        }
        let sr = self.sigma / r;
        let sr4 = sr * sr * sr * sr;
        self.big_a * self.epsilon * (self.big_b * sr4 - 1.0) * (self.sigma / (r - rc)).exp()
    }

    /// d v2 / d r.
    #[must_use]
    pub fn dv2(&self, r: f64) -> f64 {
        let rc = self.r_cut();
        if r >= rc {
            return 0.0;
        }
        let sr = self.sigma / r;
        let sr4 = sr * sr * sr * sr;
        let expo = (self.sigma / (r - rc)).exp();
        let poly = self.big_b * sr4 - 1.0;
        let dpoly = -4.0 * self.big_b * sr4 / r;
        self.big_a * self.epsilon * expo * (dpoly - poly * self.sigma / ((r - rc) * (r - rc)))
    }

    /// Three-body radial factor g(r).
    #[must_use]
    pub fn g(&self, r: f64) -> f64 {
        let rc = self.r_cut();
        if r >= rc {
            return 0.0;
        }
        (self.gamma * self.sigma / (r - rc)).exp()
    }

    /// d g / d r.
    #[must_use]
    pub fn dg(&self, r: f64) -> f64 {
        let rc = self.r_cut();
        if r >= rc {
            return 0.0;
        }
        -self.gamma * self.sigma / ((r - rc) * (r - rc)) * self.g(r)
    }

    /// Energy of an isolated triplet with center at the apex.
    #[must_use]
    pub fn v3(&self, r_ij: f64, r_ik: f64, cos_theta: f64) -> f64 {
        let d = cos_theta - self.cos_theta0;
        self.lambda * self.epsilon * d * d * self.g(r_ij) * self.g(r_ik)
    }
}

impl PairPotential for StillingerWeber {
    fn cutoff(&self) -> f64 {
        self.r_cut()
    }

    fn list_kind(&self) -> ListKind {
        ListKind::Full
    }

    fn writes_ghost_forces(&self) -> bool {
        // Triplet terms centered on locals push on ghost j/k: the reverse
        // stage must fold those forces home even though the list is full.
        true
    }

    fn compute(&self, atoms: &mut Atoms, list: &NeighborList) -> PairEnergyVirial {
        assert_eq!(list.kind, ListKind::Full, "SW needs the full list");
        let rc = self.r_cut();
        let rc2 = rc * rc;
        let mut energy = 0.0;
        let mut virial = 0.0;
        let nlocal = atoms.nlocal;
        // Scratch for the in-cutoff neighbors of the current center.
        let mut near: Vec<(usize, [f64; 3], f64)> = Vec::with_capacity(16);
        for i in 0..nlocal {
            let xi = atoms.x[i];
            near.clear();
            for &j in list.neighbors(i) {
                let j = j as usize;
                let xj = atoms.x[j];
                let u = [xj[0] - xi[0], xj[1] - xi[1], xj[2] - xi[2]];
                let r2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
                if r2 < rc2 {
                    near.push((j, u, r2.sqrt()));
                }
            }
            // Two-body: each pair once machine-wide, chosen by tag order;
            // reaction on j (possibly a ghost) flows home via reverse.
            for &(j, u, r) in &near {
                if atoms.tag[i] >= atoms.tag[j] {
                    continue;
                }
                let dv = self.dv2(r);
                let f = -dv / r; // force on j along +u
                for d in 0..3 {
                    atoms.f[j][d] += f * u[d];
                    atoms.f[i][d] -= f * u[d];
                }
                energy += self.v2(r);
                virial += f * r * r;
            }
            // Three-body: triplets centered at the local atom i.
            for jj in 0..near.len() {
                let (j, u, ru) = near[jj];
                for &(k, v, rv) in near.iter().skip(jj + 1) {
                    let c = (u[0] * v[0] + u[1] * v[1] + u[2] * v[2]) / (ru * rv);
                    let delta = c - self.cos_theta0;
                    let gj = self.g(ru);
                    let gk = self.g(rv);
                    if gj == 0.0 || gk == 0.0 {
                        continue;
                    }
                    let le = self.lambda * self.epsilon;
                    energy += le * delta * delta * gj * gk;
                    let dh_drj = le * delta * delta * self.dg(ru) * gk;
                    let dh_drk = le * delta * delta * gj * self.dg(rv);
                    let dh_dc = 2.0 * le * delta * gj * gk;
                    // Gradients of cos(theta) wrt the bond vectors.
                    let mut fj = [0.0f64; 3];
                    let mut fk = [0.0f64; 3];
                    for d in 0..3 {
                        let dc_du = v[d] / (ru * rv) - c * u[d] / (ru * ru);
                        let dc_dv = u[d] / (ru * rv) - c * v[d] / (rv * rv);
                        fj[d] = -(dh_drj * u[d] / ru + dh_dc * dc_du);
                        fk[d] = -(dh_drk * v[d] / rv + dh_dc * dc_dv);
                    }
                    for d in 0..3 {
                        atoms.f[j][d] += fj[d];
                        atoms.f[k][d] += fk[d];
                        atoms.f[i][d] -= fj[d] + fk[d];
                        virial += u[d] * fj[d] + v[d] * fk[d];
                    }
                }
            }
        }
        PairEnergyVirial { energy, virial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::FccLattice;
    use crate::neighbor::NeighborList;

    fn sw() -> StillingerWeber {
        StillingerWeber::silicon()
    }

    fn compute_system(pos: Vec<[f64; 3]>) -> (Atoms, PairEnergyVirial) {
        let p = sw();
        let mut atoms = Atoms::from_positions(pos, 1);
        let list = NeighborList::build(
            &atoms,
            [-10.0; 3],
            [30.0; 3],
            ListKind::Full,
            p.r_cut(),
            0.0,
        );
        let ev = p.compute(&mut atoms, &list);
        (atoms, ev)
    }

    fn total_energy(pos: &[[f64; 3]]) -> f64 {
        compute_system(pos.to_vec()).1.energy
    }

    #[test]
    fn dimer_energy_is_pure_two_body() {
        let p = sw();
        let r = 2.4;
        let (_, ev) = compute_system(vec![[0.0; 3], [r, 0.0, 0.0]]);
        assert!((ev.energy - p.v2(r)).abs() < 1e-12);
        assert!(ev.energy < 0.0, "bonded dimer");
    }

    #[test]
    fn trimer_adds_the_angle_term() {
        let p = sw();
        let r = 2.35;
        // Right angle at atom 0: cos(theta) = 0, delta = 1/3.
        let pos = vec![[0.0; 3], [r, 0.0, 0.0], [0.0, r, 0.0]];
        let (_, ev) = compute_system(pos);
        let d = r * std::f64::consts::SQRT_2; // j-k distance (< cutoff here?)
        let mut expect = 2.0 * p.v2(r) + p.v3(r, r, 0.0);
        if d < p.r_cut() {
            expect += p.v2(d);
            // Triplets centered at atoms 1 and 2 also fire.
            let c1 = r / d; // angle at atom 1 between (0) and (2)
            expect += p.v3(r, d, c1);
            expect += p.v3(r, d, c1);
        }
        assert!(
            (ev.energy - expect).abs() < 1e-10,
            "{} vs {expect}",
            ev.energy
        );
    }

    #[test]
    fn forces_match_numerical_gradient() {
        // A low-symmetry 4-atom cluster: every force component checked
        // against a central-difference gradient of the total energy.
        let base = vec![
            [0.0, 0.0, 0.0],
            [2.3, 0.3, -0.2],
            [0.4, 2.5, 0.3],
            [-0.3, 0.2, 2.4],
        ];
        let (atoms, _) = compute_system(base.clone());
        let h = 1e-6;
        for i in 0..base.len() {
            for d in 0..3 {
                let mut plus = base.clone();
                plus[i][d] += h;
                let mut minus = base.clone();
                minus[i][d] -= h;
                let grad = (total_energy(&plus) - total_energy(&minus)) / (2.0 * h);
                assert!(
                    (atoms.f[i][d] + grad).abs() < 1e-5,
                    "atom {i} dim {d}: force {} vs -grad {}",
                    atoms.f[i][d],
                    -grad
                );
            }
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let (atoms, _) = compute_system(vec![
            [0.0; 3],
            [2.2, 0.5, 0.0],
            [0.3, 2.4, 0.4],
            [2.0, 2.0, 2.0],
        ]);
        for d in 0..3 {
            let sum: f64 = atoms.f.iter().map(|f| f[d]).sum();
            assert!(sum.abs() < 1e-10, "net force {sum} in dim {d}");
        }
    }

    #[test]
    fn diamond_lattice_is_a_stationary_point() {
        // The ideal diamond structure: zero force on every atom by
        // symmetry, negative cohesive energy.
        let lat = FccLattice::from_cell(5.431);
        let (bounds, pos) = lat.build_diamond(2, 2, 2);
        let p = sw();
        let atoms = Atoms::from_positions(pos, 1);
        // Build ghosts as periodic images via the serial-engine approach:
        // reuse SerialSim for the full machinery.
        let sim = crate::serial::SerialSim::new(
            atoms.clone(),
            bounds,
            crate::potential::Potential::Pair(Box::new(p)),
            crate::units::UnitSystem::Metal,
            0.5,
            crate::neighbor::RebuildPolicy {
                every: 1,
                check: true,
            },
            0.001,
            28.0855,
        );
        let snap = sim.snapshot();
        // SW silicon cohesive energy: -4.336 eV/atom at a = 5.431.
        let per_atom = snap.pe / sim.atoms.nlocal as f64;
        assert!(
            (per_atom - -4.336).abs() < 0.02,
            "cohesive energy {per_atom} eV/atom (expect ~-4.336)"
        );
        for i in 0..sim.atoms.nlocal {
            for d in 0..3 {
                assert!(
                    sim.atoms.f[i][d].abs() < 1e-8,
                    "force on lattice atom {i}: {:?}",
                    sim.atoms.f[i]
                );
            }
        }
        let _ = &atoms;
    }

    #[test]
    fn silicon_crystal_conserves_energy() {
        let lat = FccLattice::from_cell(5.431);
        let (bounds, pos) = lat.build_diamond(3, 3, 3);
        let mut atoms = Atoms::from_positions(pos, 1);
        crate::velocity::finalize_velocities_serial(
            &mut atoms,
            28.0855,
            600.0,
            crate::units::UnitSystem::Metal,
            17,
        );
        let mut sim = crate::serial::SerialSim::new(
            atoms,
            bounds,
            crate::potential::Potential::Pair(Box::new(sw())),
            crate::units::UnitSystem::Metal,
            1.0,
            crate::neighbor::RebuildPolicy {
                every: 5,
                check: true,
            },
            0.001,
            28.0855,
        );
        let e0 = sim.snapshot().total_energy();
        sim.run(100);
        let e1 = sim.snapshot().total_energy();
        let drift = (e1 - e0).abs() / sim.atoms.nlocal as f64;
        assert!(drift < 5e-4, "SW energy drift {drift} eV/atom");
    }
}
