//! Interatomic potentials.
//!
//! Two families matching the paper's evaluation (Table 2):
//! * [`PairPotential`] — single-pass pairwise potentials (Lennard-Jones).
//! * [`ManyBodyPotential`] — EAM-style two-pass potentials that require two
//!   *extra communications inside the pair stage*: a reverse exchange of
//!   ghost electron densities and a forward exchange of the embedding-energy
//!   derivative (§4 "the EAM potential requires two additional
//!   communications during the pair stage").

pub mod eam;
pub mod lj;
pub mod lj_multi;
pub mod spline;
pub mod sw;

use crate::atom::Atoms;
use crate::kernels::{PairScratch, SplitScratch};
use crate::neighbor::{ListKind, NeighborList};
use tofumd_threadpool::ChunkExec;

pub use eam::EamCu;
pub use lj::LjCut;
pub use lj_multi::LjCutMulti;
pub use sw::StillingerWeber;

/// Accumulated potential energy and scalar virial (sum over pairs of
/// r_ij . f_ij), both counted once per pair machine-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairEnergyVirial {
    /// Potential energy contribution.
    pub energy: f64,
    /// Scalar virial contribution (sum of r . f over pairs).
    pub virial: f64,
}

impl PairEnergyVirial {
    /// Element-wise sum (used when reducing across ranks).
    #[must_use]
    pub fn merged(self, other: PairEnergyVirial) -> PairEnergyVirial {
        PairEnergyVirial {
            energy: self.energy + other.energy,
            virial: self.virial + other.virial,
        }
    }
}

/// A single-pass pairwise potential.
pub trait PairPotential: Send + Sync {
    /// Force cutoff distance.
    fn cutoff(&self) -> f64;

    /// Which neighbor list the potential consumes.
    fn list_kind(&self) -> ListKind;

    /// Compute forces into `atoms.f` (ghost entries included when the list
    /// is half/Newton) and return energy/virial contributions of this rank.
    fn compute(&self, atoms: &mut Atoms, list: &NeighborList) -> PairEnergyVirial;

    /// Chunk-parallel [`PairPotential::compute`]: must produce bit-identical
    /// forces, energy, and virial at any thread count (see
    /// [`crate::kernels`]). The default falls back to the serial pass, so
    /// potentials without a chunked implementation stay correct — just not
    /// parallel.
    fn compute_chunked(
        &self,
        atoms: &mut Atoms,
        list: &NeighborList,
        exec: &ChunkExec<'_>,
        scratch: &mut PairScratch,
    ) -> PairEnergyVirial {
        let _ = (exec, scratch);
        self.compute(atoms, list)
    }

    /// Does the compute pass accumulate forces on ghost atoms (requiring a
    /// reverse exchange)? Half-list potentials always do; full-list pair
    /// potentials don't; full-list *many-body* potentials (SW, Tersoff) do.
    fn writes_ghost_forces(&self) -> bool {
        !matches!(self.list_kind(), ListKind::Full)
    }

    /// Row-partitioned logging kernel for comm/compute overlap, or `None`
    /// when the potential has no split implementation (the DAG executor
    /// then falls back to the barrier-equivalent whole-pass nodes).
    fn as_split(&self) -> Option<&dyn SplitPairKernel> {
        None
    }
}

/// Row-partitioned half of a chunk-parallel pair pass. The caller logs the
/// interior rows (`select = true`) while halo puts are in flight, the
/// boundary rows (`select = false`) once ghosts have arrived, and then
/// replays both sides with [`crate::kernels::replay_forces_split`] /
/// [`crate::kernels::fold_ev_split`] — the merged replay is bit-identical
/// to `compute_chunked` over all rows because every row logs exactly the
/// updates the serial kernel would perform, in the same per-pair order, and
/// the merge re-interleaves rows ascending within each chunk.
pub trait SplitPairKernel: Send + Sync {
    /// Log the updates of rows with `flags[i] == select` into the matching
    /// side of `scratch` (which must have been `prepare`d for this
    /// `atoms.nlocal`). Rows with `flags[i] != select` contribute nothing.
    fn log_rows(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        flags: &[bool],
        select: bool,
        exec: &ChunkExec<'_>,
        scratch: &mut SplitScratch,
    );
}

/// Row-partitioned halves of the EAM two-pass computation (density pass and
/// force pass); same contract as [`SplitPairKernel`]. The embedding pass is
/// local-only and needs no split.
pub trait SplitManyBodyKernel: Send + Sync {
    /// Log the density contributions of rows with `flags[i] == select`
    /// (scalar scatter, both pair endpoints). Replay with
    /// [`crate::kernels::replay_scalars_split`] onto a zeroed `rho`.
    fn log_rho_rows(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        flags: &[bool],
        select: bool,
        exec: &ChunkExec<'_>,
        scratch: &mut SplitScratch,
    );

    /// Log the force/energy updates of rows with `flags[i] == select`;
    /// `fp` must be valid for every neighbor those rows touch.
    #[allow(clippy::too_many_arguments)]
    fn log_force_rows(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        fp: &[f64],
        flags: &[bool],
        select: bool,
        exec: &ChunkExec<'_>,
        scratch: &mut SplitScratch,
    );
}

/// A two-pass (EAM-like) potential with mid-pair-stage communication.
///
/// The driving engine must:
/// 1. call [`ManyBodyPotential::compute_rho`],
/// 2. **reverse-communicate** ghost `rho` contributions to their owners,
/// 3. call [`ManyBodyPotential::compute_embedding`],
/// 4. **forward-communicate** local `fp` values to ghosts,
/// 5. call [`ManyBodyPotential::compute_force`].
pub trait ManyBodyPotential: Send + Sync {
    /// Force cutoff distance.
    fn cutoff(&self) -> f64;

    /// Accumulate electron density for local *and ghost* atoms
    /// (half/Newton list: each pair contributes to both endpoints).
    fn compute_rho(&self, atoms: &Atoms, list: &NeighborList, rho: &mut Vec<f64>);

    /// Chunk-parallel [`ManyBodyPotential::compute_rho`], bit-identical to
    /// it at any thread count. Defaults to the serial pass.
    fn compute_rho_chunked(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        rho: &mut Vec<f64>,
        exec: &ChunkExec<'_>,
        scratch: &mut PairScratch,
    ) {
        let _ = (exec, scratch);
        self.compute_rho(atoms, list, rho);
    }

    /// Compute the embedding energy for local atoms from the fully-reduced
    /// density, filling `fp[i] = F'(rho_i)`; returns the summed embedding
    /// energy of local atoms.
    fn compute_embedding(&self, atoms: &Atoms, rho: &[f64], fp: &mut Vec<f64>) -> f64;

    /// Chunk-parallel [`ManyBodyPotential::compute_embedding`],
    /// bit-identical to it at any thread count. Defaults to the serial
    /// pass.
    fn compute_embedding_chunked(
        &self,
        atoms: &Atoms,
        rho: &[f64],
        fp: &mut Vec<f64>,
        exec: &ChunkExec<'_>,
    ) -> f64 {
        let _ = exec;
        self.compute_embedding(atoms, rho, fp)
    }

    /// Final force pass; `fp` must be valid for locals *and* ghosts.
    fn compute_force(&self, atoms: &mut Atoms, list: &NeighborList, fp: &[f64])
        -> PairEnergyVirial;

    /// Chunk-parallel [`ManyBodyPotential::compute_force`], bit-identical
    /// to it at any thread count. Defaults to the serial pass.
    fn compute_force_chunked(
        &self,
        atoms: &mut Atoms,
        list: &NeighborList,
        fp: &[f64],
        exec: &ChunkExec<'_>,
        scratch: &mut PairScratch,
    ) -> PairEnergyVirial {
        let _ = (exec, scratch);
        self.compute_force(atoms, list, fp)
    }

    /// Row-partitioned logging kernels for comm/compute overlap, or `None`
    /// when the potential has no split implementation.
    fn as_split(&self) -> Option<&dyn SplitManyBodyKernel> {
        None
    }
}

/// Any potential the engines can run.
pub enum Potential {
    /// A single-pass pairwise potential (LJ).
    Pair(Box<dyn PairPotential>),
    /// A two-pass potential with mid-stage communication (EAM).
    ManyBody(Box<dyn ManyBodyPotential>),
}

impl Potential {
    /// Force cutoff of the wrapped potential.
    #[must_use]
    pub fn cutoff(&self) -> f64 {
        match self {
            Potential::Pair(p) => p.cutoff(),
            Potential::ManyBody(p) => p.cutoff(),
        }
    }

    /// Neighbor list kind the potential needs. Many-body (EAM) uses the
    /// half/Newton list like LAMMPS's eam pair style.
    #[must_use]
    pub fn list_kind(&self) -> ListKind {
        match self {
            Potential::Pair(p) => p.list_kind(),
            Potential::ManyBody(_) => ListKind::HalfNewton,
        }
    }

    /// True if computing this potential requires the two extra mid-stage
    /// communications (the paper's EAM case).
    #[must_use]
    pub fn needs_midstage_comm(&self) -> bool {
        matches!(self, Potential::ManyBody(_))
    }

    /// True if ghost forces must be reverse-communicated after the pair
    /// stage.
    #[must_use]
    pub fn needs_reverse(&self) -> bool {
        match self {
            Potential::Pair(p) => p.writes_ghost_forces(),
            Potential::ManyBody(_) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_fields() {
        let a = PairEnergyVirial {
            energy: 1.0,
            virial: 2.0,
        };
        let b = PairEnergyVirial {
            energy: 0.5,
            virial: -1.0,
        };
        let m = a.merged(b);
        assert_eq!(m.energy, 1.5);
        assert_eq!(m.virial, 1.0);
    }

    #[test]
    fn potential_enum_dispatch() {
        let lj = Potential::Pair(Box::new(LjCut::lammps_bench()));
        assert!(!lj.needs_midstage_comm());
        assert!(lj.needs_reverse(), "half-list LJ reverse-communicates");
        assert_eq!(lj.cutoff(), 2.5);
        let eam = Potential::ManyBody(Box::new(EamCu::lammps_bench()));
        assert!(eam.needs_midstage_comm());
        assert!(eam.needs_reverse());
        assert_eq!(eam.list_kind(), ListKind::HalfNewton);
    }

    #[test]
    fn reverse_requirements_by_potential_class() {
        use crate::neighbor::ListKind;
        let lj_full = Potential::Pair(Box::new(LjCut::new(1.0, 1.0, 2.5, ListKind::Full)));
        assert!(!lj_full.needs_reverse(), "full-list pair: no ghost writes");
        let sw = Potential::Pair(Box::new(StillingerWeber::silicon()));
        assert!(sw.needs_reverse(), "full-list many-body still reverses");
        assert_eq!(sw.list_kind(), ListKind::Full);
    }
}
