//! Multi-species Lennard-Jones with per-type-pair coefficients.
//!
//! The benchmark workloads are single-species (Table 2), but a usable MD
//! library needs alloys and mixtures: this is `pair_style lj/cut` with a
//! full `pair_coeff i j` matrix, filled by Lorentz-Berthelot mixing when
//! only the diagonal is given. Atom types travel with ghosts through the
//! communication layer's packed tag/type wire records.

use super::{PairEnergyVirial, PairPotential};
use crate::atom::Atoms;
use crate::neighbor::{ListKind, NeighborList};

/// Per-pair LJ coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PairCoeff {
    lj1: f64, // 48 eps sigma^12
    lj2: f64, // 24 eps sigma^6
    lj3: f64, // 4 eps sigma^12
    lj4: f64, // 4 eps sigma^6
    cutsq: f64,
}

impl PairCoeff {
    fn new(epsilon: f64, sigma: f64, cutoff: f64) -> Self {
        let s6 = sigma.powi(6);
        let s12 = s6 * s6;
        PairCoeff {
            lj1: 48.0 * epsilon * s12,
            lj2: 24.0 * epsilon * s6,
            lj3: 4.0 * epsilon * s12,
            lj4: 4.0 * epsilon * s6,
            cutsq: cutoff * cutoff,
        }
    }
}

/// Multi-type LJ potential (types are 1-based, as in LAMMPS).
#[derive(Debug, Clone)]
pub struct LjCutMulti {
    ntypes: usize,
    /// Row-major `[ntypes x ntypes]` coefficient matrix.
    coeff: Vec<PairCoeff>,
    /// Largest pair cutoff (drives the neighbor list).
    max_cutoff: f64,
    list: ListKind,
}

impl LjCutMulti {
    /// Build from per-type `(epsilon, sigma)` with a shared cutoff;
    /// off-diagonal pairs use Lorentz-Berthelot mixing
    /// (`sigma_ij = (s_i + s_j)/2`, `eps_ij = sqrt(e_i e_j)`).
    #[must_use]
    pub fn from_types(types: &[(f64, f64)], cutoff: f64) -> Self {
        assert!(!types.is_empty() && cutoff > 0.0);
        let n = types.len();
        let mut coeff = Vec::with_capacity(n * n);
        for (ei, si) in types {
            for (ej, sj) in types {
                let eps = (ei * ej).sqrt();
                let sig = 0.5 * (si + sj);
                coeff.push(PairCoeff::new(eps, sig, cutoff));
            }
        }
        LjCutMulti {
            ntypes: n,
            coeff,
            max_cutoff: cutoff,
            list: ListKind::HalfNewton,
        }
    }

    /// Override one `pair_coeff i j` entry (1-based types; symmetric).
    pub fn set_pair(&mut self, i: usize, j: usize, epsilon: f64, sigma: f64, cutoff: f64) {
        assert!(i >= 1 && i <= self.ntypes && j >= 1 && j <= self.ntypes);
        let c = PairCoeff::new(epsilon, sigma, cutoff);
        self.coeff[(i - 1) * self.ntypes + (j - 1)] = c;
        self.coeff[(j - 1) * self.ntypes + (i - 1)] = c;
        self.max_cutoff = self.max_cutoff.max(cutoff);
    }

    #[inline]
    fn pair(&self, ti: u32, tj: u32) -> &PairCoeff {
        debug_assert!(ti >= 1 && tj >= 1, "types are 1-based");
        &self.coeff[(ti as usize - 1) * self.ntypes + (tj as usize - 1)]
    }

    /// Pair energy for types (ti, tj) at distance r (tests).
    #[must_use]
    pub fn pair_energy(&self, ti: u32, tj: u32, r: f64) -> f64 {
        let c = self.pair(ti, tj);
        if r * r >= c.cutsq {
            return 0.0;
        }
        let inv6 = 1.0 / r.powi(6);
        c.lj3 * inv6 * inv6 - c.lj4 * inv6
    }
}

impl PairPotential for LjCutMulti {
    fn cutoff(&self) -> f64 {
        self.max_cutoff
    }

    fn list_kind(&self) -> ListKind {
        self.list
    }

    fn compute(&self, atoms: &mut Atoms, list: &NeighborList) -> PairEnergyVirial {
        let mut energy = 0.0;
        let mut virial = 0.0;
        let half = !matches!(list.kind, ListKind::Full);
        for i in 0..atoms.nlocal {
            let xi = atoms.x[i];
            let ti = atoms.typ[i];
            let mut fi = [0.0f64; 3];
            for &j in list.neighbors(i) {
                let j = j as usize;
                let c = self.pair(ti, atoms.typ[j]);
                let xj = atoms.x[j];
                let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                if r2 >= c.cutsq {
                    continue;
                }
                let inv2 = 1.0 / r2;
                let inv6 = inv2 * inv2 * inv2;
                let fpair = inv6 * (c.lj1 * inv6 - c.lj2) * inv2;
                for d in 0..3 {
                    fi[d] += dx[d] * fpair;
                }
                let e = c.lj3 * inv6 * inv6 - c.lj4 * inv6;
                if half {
                    for d in 0..3 {
                        atoms.f[j][d] -= dx[d] * fpair;
                    }
                    energy += e;
                    virial += r2 * fpair;
                } else {
                    energy += 0.5 * e;
                    virial += 0.5 * r2 * fpair;
                }
            }
            for d in 0..3 {
                atoms.f[i][d] += fi[d];
            }
        }
        PairEnergyVirial { energy, virial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::lj::LjCut;
    use crate::potential::Potential;

    #[test]
    fn single_type_matches_plain_lj() {
        let multi = LjCutMulti::from_types(&[(1.0, 1.0)], 2.5);
        let plain = LjCut::lammps_bench();
        for &r in &[0.95, 1.2, 2.0, 2.4] {
            assert!((multi.pair_energy(1, 1, r) - plain.pair_energy(r)).abs() < 1e-12);
        }
    }

    #[test]
    fn lorentz_berthelot_mixing() {
        let multi = LjCutMulti::from_types(&[(1.0, 1.0), (4.0, 3.0)], 6.0);
        // eps_12 = sqrt(1*4) = 2, sigma_12 = 2.
        let direct = LjCut::new(2.0, 2.0, 6.0, ListKind::HalfNewton);
        for &r in &[2.0, 2.5, 3.0, 5.0] {
            assert!(
                (multi.pair_energy(1, 2, r) - direct.pair_energy(r)).abs() < 1e-10,
                "mixed pair at {r}"
            );
        }
        // Symmetric.
        assert_eq!(multi.pair_energy(1, 2, 2.3), multi.pair_energy(2, 1, 2.3));
    }

    #[test]
    fn explicit_pair_coeff_overrides_mixing() {
        let mut multi = LjCutMulti::from_types(&[(1.0, 1.0), (1.0, 1.0)], 2.5);
        multi.set_pair(1, 2, 0.5, 1.5, 4.0);
        assert!((multi.cutoff() - 4.0).abs() < 1e-12, "cutoff tracks max");
        let direct = LjCut::new(0.5, 1.5, 4.0, ListKind::HalfNewton);
        assert!((multi.pair_energy(2, 1, 2.0) - direct.pair_energy(2.0)).abs() < 1e-12);
        // 1-1 unchanged.
        let plain = LjCut::lammps_bench();
        assert!((multi.pair_energy(1, 1, 1.2) - plain.pair_energy(1.2)).abs() < 1e-12);
    }

    #[test]
    fn binary_mixture_forces_respect_types() {
        // A hetero dimer at the 1-2 minimum has zero force; at the 1-1
        // minimum it does not.
        let multi = LjCutMulti::from_types(&[(1.0, 1.0), (1.0, 2.0)], 6.0);
        // sigma_12 = 1.5 -> r_min = 1.5 * 2^(1/6).
        let rmin12 = 1.5 * 2f64.powf(1.0 / 6.0);
        let mut atoms = Atoms::from_positions(vec![[0.0; 3], [rmin12, 0.0, 0.0]], 1);
        atoms.typ[1] = 2;
        let list = NeighborList::build(&atoms, [-2.0; 3], [8.0; 3], ListKind::HalfNewton, 6.0, 0.0);
        multi.compute(&mut atoms, &list);
        assert!(atoms.f[0][0].abs() < 1e-9, "mixed dimer at its minimum");
        // Same geometry with both atoms type 1 is deep on the repulsive
        // side? No: rmin12 > rmin11, so it's attractive — nonzero force.
        let mut homo = Atoms::from_positions(vec![[0.0; 3], [rmin12, 0.0, 0.0]], 1);
        let l2 = NeighborList::build(&homo, [-2.0; 3], [8.0; 3], ListKind::HalfNewton, 6.0, 0.0);
        multi.compute(&mut homo, &l2);
        assert!(homo.f[0][0].abs() > 1e-3, "homo dimer off its minimum");
    }

    #[test]
    fn mixture_conserves_energy_in_serial_md() {
        use crate::lattice::FccLattice;
        use crate::neighbor::RebuildPolicy;
        use crate::units::UnitSystem;
        use crate::velocity;
        let lat = FccLattice::from_reduced_density(0.8442);
        let (bounds, pos) = lat.build(4, 4, 4);
        let n = pos.len();
        let mut atoms = Atoms::from_positions(pos, 1);
        // Alternate species.
        for i in 0..n {
            atoms.typ[i] = 1 + (i % 2) as u32;
        }
        velocity::finalize_velocities_serial(&mut atoms, 1.0, 1.0, UnitSystem::Lj, 9);
        let multi = LjCutMulti::from_types(&[(1.0, 1.0), (0.8, 0.9)], 2.5);
        let mut sim = crate::serial::SerialSim::new(
            atoms,
            bounds,
            Potential::Pair(Box::new(multi)),
            UnitSystem::Lj,
            0.3,
            RebuildPolicy {
                every: 2,
                check: true,
            },
            0.004,
            1.0,
        );
        // Ghost types must mirror their owners.
        for gi in 0..sim.atoms.nghost() {
            let idx = sim.atoms.nlocal + gi;
            let tag = sim.atoms.tag[idx] as usize - 1;
            assert_eq!(sim.atoms.typ[idx], 1 + (tag % 2) as u32);
        }
        let e0 = sim.snapshot().total_energy();
        sim.run(100);
        let drift = (sim.snapshot().total_energy() - e0).abs() / n as f64;
        assert!(drift < 5e-3, "mixture energy drift {drift}");
    }
}
