//! Embedded-atom-method potential (Eq. 2 of the paper).
//!
//! LAMMPS's `pair_style eam` evaluates spline-interpolated tables read from
//! a potential file; the paper uses the Cu system with `Cu_u3.eam` and a
//! 4.95 angstrom cutoff (Table 2). That file is not redistributable here, so
//! the tables are generated from smooth analytic Cu-like forms (Morse pair
//! term, exponential density, square-root embedding — Finnis-Sinclair
//! style), then evaluated through the same tabulate-plus-cubic-spline path
//! LAMMPS uses. This preserves the two-pass computation structure — and
//! therefore the two extra mid-pair-stage communications the paper
//! optimizes — while using only self-contained data.

use super::spline::Spline;
use super::{ManyBodyPotential, PairEnergyVirial, SplitManyBodyKernel};
use crate::atom::Atoms;
use crate::kernels::{self, KernelMode, PairScratch, SplitScratch, CHUNK_ROWS, LANE_WIDTH};
use crate::neighbor::{ListKind, NeighborList};
use tofumd_threadpool::ChunkExec;

/// One accepted pair of a blocked EAM row: neighbor index, displacement,
/// squared distance, and distance, in neighbor order. The spline
/// evaluations stay in the per-pair emit loop (scalar order), so only the
/// geometry is lane-batched.
type EamHit = (u32, [f64; 3], f64, f64);

/// Cu-like EAM with spline-tabulated rho(r), phi(r) and F(rho).
pub struct EamCu {
    cutoff: f64,
    cutsq: f64,
    rho_r: Spline,
    phi_r: Spline,
    f_rho: Spline,
    /// Inner-loop implementation (bit-identical either way).
    mode: KernelMode,
}

/// Analytic generating forms for the tables.
#[derive(Debug, Clone, Copy)]
pub struct EamParams {
    /// Nearest-neighbor (equilibrium) distance, angstrom.
    pub re: f64,
    /// Density prefactor.
    pub fe: f64,
    /// Density decay exponent (dimensionless, in r/re).
    pub beta: f64,
    /// Morse well depth, eV.
    pub d_morse: f64,
    /// Morse width, 1/angstrom.
    pub alpha: f64,
    /// Embedding strength, eV.
    pub f0: f64,
    /// Equilibrium host density (sets the embedding scale).
    pub rho_e: f64,
    /// Force cutoff, angstrom.
    pub cutoff: f64,
}

impl EamParams {
    /// Cu-flavoured defaults: re = a/sqrt(2) for a = 3.615, cutoff 4.95
    /// (Table 2), remaining constants chosen for a bound, stable FCC
    /// crystal at that lattice constant.
    #[must_use]
    pub fn cu() -> Self {
        EamParams {
            re: 3.615 / std::f64::consts::SQRT_2,
            fe: 1.0,
            beta: 5.0,
            d_morse: 0.35,
            alpha: 1.7,
            f0: 1.8,
            rho_e: 13.0,
            cutoff: 4.95,
        }
    }

    /// Smooth cutoff switch: 1 below 0.9*rc, 0 above rc, C^2 in between.
    #[must_use]
    pub fn switch(&self, r: f64) -> f64 {
        let rc = self.cutoff;
        let rs = 0.9 * rc;
        if r <= rs {
            1.0
        } else if r >= rc {
            0.0
        } else {
            let t = (r - rs) / (rc - rs);
            1.0 - t * t * t * (10.0 - 15.0 * t + 6.0 * t * t)
        }
    }

    /// Analytic electron density contribution of a neighbor at distance r.
    #[must_use]
    pub fn rho(&self, r: f64) -> f64 {
        self.fe * (-self.beta * (r / self.re - 1.0)).exp() * self.switch(r)
    }

    /// Analytic pair term (Morse), eV.
    #[must_use]
    pub fn phi(&self, r: f64) -> f64 {
        let e = (-self.alpha * (r - self.re)).exp();
        self.d_morse * (e * e - 2.0 * e) * self.switch(r)
    }

    /// Analytic embedding energy, eV.
    #[must_use]
    pub fn embed(&self, rho: f64) -> f64 {
        -self.f0 * (rho.max(0.0) / self.rho_e).sqrt()
    }
}

impl EamCu {
    /// Number of table knots (LAMMPS eam files typically use 500-5000).
    const NKNOTS: usize = 2000;

    /// Build spline tables from analytic parameters.
    #[must_use]
    pub fn from_params(p: EamParams) -> Self {
        let r_min = 0.5; // below any physical separation at MD temperatures
        let dr = (p.cutoff - r_min) / (Self::NKNOTS - 1) as f64;
        let rho_r = Spline::tabulate(r_min, dr, Self::NKNOTS, |r| p.rho(r));
        let phi_r = Spline::tabulate(r_min, dr, Self::NKNOTS, |r| p.phi(r));
        // Embedding domain: comfortably past any density reachable with
        // this rho(r) (12 first-shell neighbors contribute ~rho_e).
        let rho_max = 4.0 * p.rho_e;
        let drho = rho_max / (Self::NKNOTS - 1) as f64;
        let f_rho = Spline::tabulate(0.0, drho, Self::NKNOTS, |rho| p.embed(rho));
        EamCu {
            cutoff: p.cutoff,
            cutsq: p.cutoff * p.cutoff,
            rho_r,
            phi_r,
            f_rho,
            mode: KernelMode::Scalar,
        }
    }

    /// Select the inner-loop implementation ([`KernelMode::Blocked`] for
    /// the lane-structured path; results are bit-identical either way).
    #[must_use]
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active inner-loop implementation.
    #[must_use]
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Blocked inner loop of one neighbor row: gather, displacement, r²,
    /// and r computed per [`LANE_WIDTH`]-wide lane — the same IEEE op
    /// sequence the scalar passes run per pair (`0 + d·d` folds to `d·d`
    /// exactly because squares are never -0.0), rejected lanes' values
    /// never read — then the accepted pairs collected in neighbor order,
    /// with the `len % LANE_WIDTH` remainder on the exact scalar tail.
    #[inline]
    fn blocked_row_hits(
        &self,
        xi: [f64; 3],
        x: &[[f64; 3]],
        neigh: &[u32],
        hits: &mut Vec<EamHit>,
    ) {
        hits.clear();
        let cutsq = self.cutsq;
        let full = neigh.len() - neigh.len() % LANE_WIDTH;
        let mut dx = [[0.0f64; 3]; LANE_WIDTH];
        let mut r2 = [0.0f64; LANE_WIDTH];
        let mut r = [0.0f64; LANE_WIDTH];
        for blk in neigh[..full].chunks_exact(LANE_WIDTH) {
            kernels::gather_dx_r2(xi, x, blk, &mut dx, &mut r2);
            for k in 0..LANE_WIDTH {
                r[k] = r2[k].sqrt();
            }
            for k in 0..LANE_WIDTH {
                if r2[k] < cutsq {
                    hits.push((blk[k], dx[k], r2[k], r[k]));
                }
            }
        }
        for &j in &neigh[full..] {
            let xj = x[j as usize];
            let d = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
            let rr = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            if rr < cutsq {
                hits.push((j, d, rr, rr.sqrt()));
            }
        }
    }

    /// The paper's EAM benchmark stand-in (Cu, cutoff 4.95).
    #[must_use]
    pub fn lammps_bench() -> Self {
        Self::from_params(EamParams::cu())
    }

    /// Spline-evaluated density at r (exposed for tests).
    #[must_use]
    pub fn rho_at(&self, r: f64) -> f64 {
        self.rho_r.eval(r)
    }

    /// Spline-evaluated pair energy at r (exposed for tests).
    #[must_use]
    pub fn phi_at(&self, r: f64) -> f64 {
        self.phi_r.eval(r)
    }

    /// Spline-evaluated embedding energy at rho (exposed for tests).
    #[must_use]
    pub fn embed_at(&self, rho: f64) -> f64 {
        self.f_rho.eval(rho)
    }
}

impl ManyBodyPotential for EamCu {
    fn cutoff(&self) -> f64 {
        self.cutoff
    }

    fn compute_rho(&self, atoms: &Atoms, list: &NeighborList, rho: &mut Vec<f64>) {
        assert!(!matches!(list.kind, ListKind::Full), "EAM uses a half list");
        rho.clear();
        rho.resize(atoms.ntotal(), 0.0);
        if self.mode == KernelMode::Blocked {
            let mut hits: Vec<EamHit> = Vec::new();
            for i in 0..atoms.nlocal {
                self.blocked_row_hits(atoms.x[i], &atoms.x, list.neighbors(i), &mut hits);
                for &(j, _, _, r) in &hits {
                    let contrib = self.rho_r.eval(r);
                    rho[i] += contrib;
                    rho[j as usize] += contrib;
                }
            }
            return;
        }
        for i in 0..atoms.nlocal {
            let xi = atoms.x[i];
            for &j in list.neighbors(i) {
                let j = j as usize;
                let xj = atoms.x[j];
                let mut r2 = 0.0;
                for d in 0..3 {
                    let dd = xi[d] - xj[d];
                    r2 += dd * dd;
                }
                if r2 >= self.cutsq {
                    continue;
                }
                let contrib = self.rho_r.eval(r2.sqrt());
                rho[i] += contrib;
                rho[j] += contrib; // half list: contribute to both endpoints
            }
        }
    }

    fn compute_embedding(&self, atoms: &Atoms, rho: &[f64], fp: &mut Vec<f64>) -> f64 {
        fp.clear();
        fp.resize(atoms.ntotal(), 0.0);
        let mut energy = 0.0;
        for i in 0..atoms.nlocal {
            energy += self.f_rho.eval(rho[i]);
            fp[i] = self.f_rho.eval_deriv(rho[i]);
        }
        energy
    }

    fn compute_force(
        &self,
        atoms: &mut Atoms,
        list: &NeighborList,
        fp: &[f64],
    ) -> PairEnergyVirial {
        assert!(fp.len() >= atoms.ntotal(), "fp must cover ghosts");
        let mut energy = 0.0;
        let mut virial = 0.0;
        if self.mode == KernelMode::Blocked {
            let mut hits: Vec<EamHit> = Vec::new();
            for i in 0..atoms.nlocal {
                self.blocked_row_hits(atoms.x[i], &atoms.x, list.neighbors(i), &mut hits);
                let mut fi = [0.0f64; 3];
                for &(j, dx, r2, r) in &hits {
                    let j = j as usize;
                    let phip = self.phi_r.eval_deriv(r);
                    let rhop = self.rho_r.eval_deriv(r);
                    let dudr = phip + (fp[i] + fp[j]) * rhop;
                    let fpair = -dudr / r;
                    fi[0] += dx[0] * fpair;
                    fi[1] += dx[1] * fpair;
                    fi[2] += dx[2] * fpair;
                    atoms.f[j][0] -= dx[0] * fpair;
                    atoms.f[j][1] -= dx[1] * fpair;
                    atoms.f[j][2] -= dx[2] * fpair;
                    energy += self.phi_r.eval(r);
                    virial += r2 * fpair;
                }
                for d in 0..3 {
                    atoms.f[i][d] += fi[d];
                }
            }
            return PairEnergyVirial { energy, virial };
        }
        for i in 0..atoms.nlocal {
            let xi = atoms.x[i];
            let mut fi = [0.0f64; 3];
            for &j in list.neighbors(i) {
                let j = j as usize;
                let xj = atoms.x[j];
                let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                if r2 >= self.cutsq {
                    continue;
                }
                let r = r2.sqrt();
                let phip = self.phi_r.eval_deriv(r);
                let rhop = self.rho_r.eval_deriv(r);
                // dU/dr for the pair, including both embedding terms.
                let dudr = phip + (fp[i] + fp[j]) * rhop;
                let fpair = -dudr / r;
                fi[0] += dx[0] * fpair;
                fi[1] += dx[1] * fpair;
                fi[2] += dx[2] * fpair;
                atoms.f[j][0] -= dx[0] * fpair;
                atoms.f[j][1] -= dx[1] * fpair;
                atoms.f[j][2] -= dx[2] * fpair;
                energy += self.phi_r.eval(r);
                virial += r2 * fpair;
            }
            for d in 0..3 {
                atoms.f[i][d] += fi[d];
            }
        }
        PairEnergyVirial { energy, virial }
    }

    fn compute_rho_chunked(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        rho: &mut Vec<f64>,
        exec: &ChunkExec<'_>,
        scratch: &mut PairScratch,
    ) {
        assert!(!matches!(list.kind, ListKind::Full), "EAM uses a half list");
        let nlocal = atoms.nlocal;
        let ntotal = atoms.ntotal();
        rho.clear();
        rho.resize(ntotal, 0.0);
        let bs = kernels::bucket_size(ntotal);
        let cutsq = self.cutsq;
        let chunks = scratch.prepare(nlocal.div_ceil(CHUNK_ROWS));
        let x = &atoms.x;
        let blocked = self.mode == KernelMode::Blocked;
        let exec = &exec.floored(nlocal);
        exec.for_each_mut(chunks, &|c, log| {
            let row_lo = c * CHUNK_ROWS;
            let row_hi = (row_lo + CHUNK_ROWS).min(nlocal);
            let mut hits: Vec<EamHit> = Vec::new();
            for i in row_lo..row_hi {
                let xi = x[i];
                if blocked {
                    self.blocked_row_hits(xi, x, list.neighbors(i), &mut hits);
                    for &(j, _, _, r) in &hits {
                        let contrib = self.rho_r.eval(r);
                        // Serial order: rho[i] first, then rho[j].
                        log.push_scalar(bs, i as u32, contrib);
                        log.push_scalar(bs, j, contrib);
                    }
                    continue;
                }
                for &j in list.neighbors(i) {
                    let j = j as usize;
                    let xj = x[j];
                    let mut r2 = 0.0;
                    for d in 0..3 {
                        let dd = xi[d] - xj[d];
                        r2 += dd * dd;
                    }
                    if r2 >= cutsq {
                        continue;
                    }
                    let contrib = self.rho_r.eval(r2.sqrt());
                    // Serial order: rho[i] first, then rho[j].
                    log.push_scalar(bs, i as u32, contrib);
                    log.push_scalar(bs, j as u32, contrib);
                }
            }
        });
        kernels::replay_scalars(chunks, rho, exec);
    }

    fn compute_embedding_chunked(
        &self,
        atoms: &Atoms,
        rho: &[f64],
        fp: &mut Vec<f64>,
        exec: &ChunkExec<'_>,
    ) -> f64 {
        let nlocal = atoms.nlocal;
        fp.clear();
        fp.resize(atoms.ntotal(), 0.0);
        // Rows write disjoint fp slots, so chunks mutate their own slice
        // directly; per-row energies are logged and folded in row order.
        let mut items: Vec<(&mut [f64], Vec<f64>)> = fp[..nlocal]
            .chunks_mut(CHUNK_ROWS)
            .map(|s| (s, Vec::new()))
            .collect();
        let exec = &exec.floored(nlocal);
        exec.for_each_mut(&mut items, &|c, item| {
            let (fp_chunk, energies) = item;
            let row_lo = c * CHUNK_ROWS;
            for (k, slot) in fp_chunk.iter_mut().enumerate() {
                let r = rho[row_lo + k];
                energies.push(self.f_rho.eval(r));
                *slot = self.f_rho.eval_deriv(r);
            }
        });
        let mut energy = 0.0;
        for (_, energies) in &items {
            for &e in energies {
                energy += e;
            }
        }
        energy
    }

    fn compute_force_chunked(
        &self,
        atoms: &mut Atoms,
        list: &NeighborList,
        fp: &[f64],
        exec: &ChunkExec<'_>,
        scratch: &mut PairScratch,
    ) -> PairEnergyVirial {
        assert!(fp.len() >= atoms.ntotal(), "fp must cover ghosts");
        let nlocal = atoms.nlocal;
        let ntotal = atoms.ntotal();
        let bs = kernels::bucket_size(ntotal);
        let cutsq = self.cutsq;
        let chunks = scratch.prepare(nlocal.div_ceil(CHUNK_ROWS));
        let x = &atoms.x;
        let blocked = self.mode == KernelMode::Blocked;
        let exec = &exec.floored(nlocal);
        exec.for_each_mut(chunks, &|c, log| {
            let row_lo = c * CHUNK_ROWS;
            let row_hi = (row_lo + CHUNK_ROWS).min(nlocal);
            let mut hits: Vec<EamHit> = Vec::new();
            for i in row_lo..row_hi {
                let xi = x[i];
                let mut fi = [0.0f64; 3];
                if blocked {
                    self.blocked_row_hits(xi, x, list.neighbors(i), &mut hits);
                    for &(j, dx, r2, r) in &hits {
                        let phip = self.phi_r.eval_deriv(r);
                        let rhop = self.rho_r.eval_deriv(r);
                        let dudr = phip + (fp[i] + fp[j as usize]) * rhop;
                        let fpair = -dudr / r;
                        fi[0] += dx[0] * fpair;
                        fi[1] += dx[1] * fpair;
                        fi[2] += dx[2] * fpair;
                        log.push_force(
                            bs,
                            j,
                            [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                        );
                        log.push_ev(self.phi_r.eval(r), r2 * fpair);
                    }
                    log.push_force(bs, i as u32, fi);
                    continue;
                }
                for &j in list.neighbors(i) {
                    let j = j as usize;
                    let xj = x[j];
                    let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                    if r2 >= cutsq {
                        continue;
                    }
                    let r = r2.sqrt();
                    let phip = self.phi_r.eval_deriv(r);
                    let rhop = self.rho_r.eval_deriv(r);
                    let dudr = phip + (fp[i] + fp[j]) * rhop;
                    let fpair = -dudr / r;
                    fi[0] += dx[0] * fpair;
                    fi[1] += dx[1] * fpair;
                    fi[2] += dx[2] * fpair;
                    log.push_force(
                        bs,
                        j as u32,
                        [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                    );
                    log.push_ev(self.phi_r.eval(r), r2 * fpair);
                }
                log.push_force(bs, i as u32, fi);
            }
        });
        kernels::replay_forces(chunks, &mut atoms.f, exec);
        let (energy, virial) = kernels::fold_ev(chunks);
        PairEnergyVirial { energy, virial }
    }

    fn as_split(&self) -> Option<&dyn SplitManyBodyKernel> {
        Some(self)
    }
}

impl SplitManyBodyKernel for EamCu {
    fn log_rho_rows(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        flags: &[bool],
        select: bool,
        exec: &ChunkExec<'_>,
        scratch: &mut SplitScratch,
    ) {
        assert!(!matches!(list.kind, ListKind::Full), "EAM uses a half list");
        let nlocal = atoms.nlocal;
        let cutsq = self.cutsq;
        let bs = scratch.bs();
        let x = &atoms.x;
        let blocked = self.mode == KernelMode::Blocked;
        let exec = &exec.floored(nlocal);
        let logs = scratch.side_mut(select);
        exec.for_each_mut(logs, &|c, log| {
            let row_lo = c * CHUNK_ROWS;
            let row_hi = (row_lo + CHUNK_ROWS).min(nlocal);
            let mut hits: Vec<EamHit> = Vec::new();
            for i in row_lo..row_hi {
                if flags[i] != select {
                    continue;
                }
                let row = i as u32;
                let xi = x[i];
                if blocked {
                    self.blocked_row_hits(xi, x, list.neighbors(i), &mut hits);
                    for &(j, _, _, r) in &hits {
                        let contrib = self.rho_r.eval(r);
                        // Serial order: rho[i] first, then rho[j].
                        log.push_scalar(bs, row, row, contrib);
                        log.push_scalar(bs, row, j, contrib);
                    }
                    continue;
                }
                for &j in list.neighbors(i) {
                    let j = j as usize;
                    let xj = x[j];
                    let mut r2 = 0.0;
                    for d in 0..3 {
                        let dd = xi[d] - xj[d];
                        r2 += dd * dd;
                    }
                    if r2 >= cutsq {
                        continue;
                    }
                    let contrib = self.rho_r.eval(r2.sqrt());
                    // Serial order: rho[i] first, then rho[j].
                    log.push_scalar(bs, row, row, contrib);
                    log.push_scalar(bs, row, j as u32, contrib);
                }
            }
        });
    }

    fn log_force_rows(
        &self,
        atoms: &Atoms,
        list: &NeighborList,
        fp: &[f64],
        flags: &[bool],
        select: bool,
        exec: &ChunkExec<'_>,
        scratch: &mut SplitScratch,
    ) {
        let nlocal = atoms.nlocal;
        let cutsq = self.cutsq;
        let bs = scratch.bs();
        let x = &atoms.x;
        let blocked = self.mode == KernelMode::Blocked;
        let exec = &exec.floored(nlocal);
        let logs = scratch.side_mut(select);
        exec.for_each_mut(logs, &|c, log| {
            let row_lo = c * CHUNK_ROWS;
            let row_hi = (row_lo + CHUNK_ROWS).min(nlocal);
            let mut hits: Vec<EamHit> = Vec::new();
            for i in row_lo..row_hi {
                if flags[i] != select {
                    continue;
                }
                let row = i as u32;
                let xi = x[i];
                let mut fi = [0.0f64; 3];
                if blocked {
                    self.blocked_row_hits(xi, x, list.neighbors(i), &mut hits);
                    for &(j, dx, r2, r) in &hits {
                        let phip = self.phi_r.eval_deriv(r);
                        let rhop = self.rho_r.eval_deriv(r);
                        let dudr = phip + (fp[i] + fp[j as usize]) * rhop;
                        let fpair = -dudr / r;
                        fi[0] += dx[0] * fpair;
                        fi[1] += dx[1] * fpair;
                        fi[2] += dx[2] * fpair;
                        log.push_force(
                            bs,
                            row,
                            j,
                            [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                        );
                        log.push_ev(row, self.phi_r.eval(r), r2 * fpair);
                    }
                    log.push_force(bs, row, row, fi);
                    continue;
                }
                for &j in list.neighbors(i) {
                    let j = j as usize;
                    let xj = x[j];
                    let dx = [xi[0] - xj[0], xi[1] - xj[1], xi[2] - xj[2]];
                    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                    if r2 >= cutsq {
                        continue;
                    }
                    let r = r2.sqrt();
                    let phip = self.phi_r.eval_deriv(r);
                    let rhop = self.rho_r.eval_deriv(r);
                    let dudr = phip + (fp[i] + fp[j]) * rhop;
                    let fpair = -dudr / r;
                    fi[0] += dx[0] * fpair;
                    fi[1] += dx[1] * fpair;
                    fi[2] += dx[2] * fpair;
                    log.push_force(
                        bs,
                        row,
                        j as u32,
                        [-(dx[0] * fpair), -(dx[1] * fpair), -(dx[2] * fpair)],
                    );
                    log.push_ev(row, self.phi_r.eval(r), r2 * fpair);
                }
                log.push_force(bs, row, row, fi);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborList;

    #[test]
    fn splines_match_analytic_forms() {
        let p = EamParams::cu();
        let eam = EamCu::from_params(p);
        for i in 0..40 {
            let r = 1.0 + i as f64 * 0.09;
            assert!((eam.rho_at(r) - p.rho(r)).abs() < 1e-6, "rho at {r}");
            assert!((eam.phi_at(r) - p.phi(r)).abs() < 1e-6, "phi at {r}");
        }
        for i in 1..40 {
            let rho = i as f64 * 0.8;
            assert!(
                (eam.embed_at(rho) - p.embed(rho)).abs() < 1e-4,
                "embed at {rho}"
            );
        }
    }

    #[test]
    fn switch_function_is_smooth_and_clamped() {
        let p = EamParams::cu();
        assert_eq!(p.switch(1.0), 1.0);
        assert_eq!(p.switch(p.cutoff), 0.0);
        assert_eq!(p.switch(p.cutoff + 1.0), 0.0);
        let mid = 0.95 * p.cutoff;
        assert!(p.switch(mid) > 0.0 && p.switch(mid) < 1.0);
    }

    #[test]
    fn phi_has_minimum_near_re() {
        let p = EamParams::cu();
        let e_re = p.phi(p.re);
        assert!(e_re < 0.0, "pair term must be bound at re");
        assert!(p.phi(p.re - 0.2) > e_re);
        assert!(p.phi(p.re + 0.2) > e_re);
    }

    /// Full two-pass computation on a dimer, compared against a numerical
    /// gradient of the analytic total energy.
    #[test]
    fn dimer_force_matches_numerical_gradient() {
        let p = EamParams::cu();
        let eam = EamCu::from_params(p);
        let total_energy = |r: f64| -> f64 {
            // Dimer: each atom sees rho(r); energy = 2 F(rho(r)) + phi(r).
            2.0 * p.embed(p.rho(r)) + p.phi(r)
        };
        let r = 2.4;
        let mut atoms = Atoms::from_positions(vec![[0.0; 3], [r, 0.0, 0.0]], 1);
        let list = NeighborList::build(
            &atoms,
            [-1.0; 3],
            [7.0; 3],
            ListKind::HalfNewton,
            p.cutoff,
            0.0,
        );
        let mut rho = Vec::new();
        let mut fp = Vec::new();
        eam.compute_rho(&atoms, &list, &mut rho);
        let e_embed = eam.compute_embedding(&atoms, &rho, &mut fp);
        let ev = eam.compute_force(&mut atoms, &list, &fp);
        let e_total = e_embed + ev.energy;
        assert!((e_total - total_energy(r)).abs() < 1e-4, "energy mismatch");
        let h = 1e-5;
        let dudr = (total_energy(r + h) - total_energy(r - h)) / (2.0 * h);
        // Force on atom 0 along x should be -dU/dx0 = +dU/dr.
        assert!(
            (atoms.f[0][0] - dudr).abs() < 1e-3,
            "force {} vs gradient {}",
            atoms.f[0][0],
            dudr
        );
        // Newton's third law.
        assert!((atoms.f[0][0] + atoms.f[1][0]).abs() < 1e-12);
    }

    #[test]
    fn rho_accumulates_on_both_pair_endpoints() {
        let p = EamParams::cu();
        let eam = EamCu::from_params(p);
        let atoms = Atoms::from_positions(vec![[0.0; 3], [2.5, 0.0, 0.0]], 1);
        let list = NeighborList::build(
            &atoms,
            [-1.0; 3],
            [7.0; 3],
            ListKind::HalfNewton,
            p.cutoff,
            0.0,
        );
        let mut rho = Vec::new();
        eam.compute_rho(&atoms, &list, &mut rho);
        assert!(rho[0] > 0.0);
        assert!(
            (rho[0] - rho[1]).abs() < 1e-12,
            "dimer densities must match"
        );
    }

    /// Split rho and force logging must reproduce the chunked passes bit
    /// for bit once both sides are replayed in merged row order.
    #[test]
    fn split_rho_and_force_match_chunked_bitwise() {
        use crate::kernels::{self, PairScratch, SplitScratch};
        use tofumd_threadpool::{ChunkExec, SpinPool};
        let mut s = 0x2545_f491_4f6c_dd1du64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos = Vec::new();
        for ix in 0..5 {
            for iy in 0..5 {
                for iz in 0..5 {
                    pos.push([
                        ix as f64 * 2.4 + 0.3 * rnd(),
                        iy as f64 * 2.4 + 0.3 * rnd(),
                        iz as f64 * 2.4 + 0.3 * rnd(),
                    ]);
                }
            }
        }
        let mut base = Atoms::from_positions(pos, 1);
        let nlocal = base.nlocal;
        for k in 0..40 {
            base.push_ghost(
                [12.2 + 2.0 * rnd(), 12.5 * rnd(), 12.5 * rnd()],
                1,
                9000 + k,
            );
        }
        let eam = EamCu::lammps_bench();
        let list = NeighborList::build(
            &base,
            [-1.0; 3],
            [16.0; 3],
            ListKind::HalfNewton,
            eam.cutoff,
            0.3,
        );
        let flags: Vec<bool> = (0..nlocal).map(|i| (i * 2_654_435_761) % 3 != 0).collect();
        let ntotal = base.ntotal();
        // Reference chunked passes.
        let mut scratch = PairScratch::new();
        let mut rho_ref = Vec::new();
        eam.compute_rho_chunked(&base, &list, &mut rho_ref, &ChunkExec::Serial, &mut scratch);
        let mut fp = Vec::new();
        eam.compute_embedding(&base, &rho_ref, &mut fp);
        for i in nlocal..ntotal {
            fp[i] = 0.01 * (i as f64); // stand-in for forward-communicated fp
        }
        let mut a_ref = base.clone();
        let ev_ref =
            eam.compute_force_chunked(&mut a_ref, &list, &fp, &ChunkExec::Serial, &mut scratch);
        let pool = SpinPool::new(4);
        for exec in [ChunkExec::Serial, ChunkExec::Pool(&pool)] {
            let mut split = SplitScratch::new();
            split.prepare(nlocal);
            eam.log_rho_rows(&base, &list, &flags, true, &exec, &mut split);
            eam.log_rho_rows(&base, &list, &flags, false, &exec, &mut split);
            let mut rho = vec![0.0; ntotal];
            kernels::replay_scalars_split(&split, &mut rho, &exec);
            for i in 0..ntotal {
                assert_eq!(rho[i].to_bits(), rho_ref[i].to_bits(), "rho [{i}]");
            }
            let mut a = base.clone();
            split.prepare(nlocal);
            eam.log_force_rows(&a, &list, &fp, &flags, true, &exec, &mut split);
            eam.log_force_rows(&a, &list, &fp, &flags, false, &exec, &mut split);
            kernels::replay_forces_split(&split, &mut a.f, &exec);
            let (energy, virial) = kernels::fold_ev_split(&split);
            assert_eq!(energy.to_bits(), ev_ref.energy.to_bits());
            assert_eq!(virial.to_bits(), ev_ref.virial.to_bits());
            for i in 0..ntotal {
                for d in 0..3 {
                    assert_eq!(a.f[i][d].to_bits(), a_ref.f[i][d].to_bits(), "f [{i}][{d}]");
                }
            }
        }
    }

    /// The blocked EAM inner loops must reproduce the scalar passes bit
    /// for bit across serial, chunked, and split entry points.
    #[test]
    fn blocked_mode_matches_scalar_bitwise() {
        use crate::kernels::{self, KernelMode, PairScratch, SplitScratch};
        use tofumd_threadpool::{ChunkExec, SpinPool};
        let mut s = 0x853c_49e6_748f_ea9bu64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (s >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos = Vec::new();
        for ix in 0..5 {
            for iy in 0..5 {
                for iz in 0..5 {
                    pos.push([
                        ix as f64 * 2.4 + 0.3 * rnd(),
                        iy as f64 * 2.4 + 0.3 * rnd(),
                        iz as f64 * 2.4 + 0.3 * rnd(),
                    ]);
                }
            }
        }
        let mut base = Atoms::from_positions(pos, 1);
        let nlocal = base.nlocal;
        for k in 0..30 {
            base.push_ghost(
                [12.2 + 2.0 * rnd(), 12.5 * rnd(), 12.5 * rnd()],
                1,
                9100 + k,
            );
        }
        let scalar = EamCu::lammps_bench();
        let blocked = EamCu::lammps_bench().with_kernel_mode(KernelMode::Blocked);
        let list = NeighborList::build(
            &base,
            [-1.0; 3],
            [16.0; 3],
            ListKind::HalfNewton,
            scalar.cutoff,
            0.3,
        );
        let ntotal = base.ntotal();
        let flags: Vec<bool> = (0..nlocal).map(|i| (i * 2_654_435_761) % 4 != 0).collect();
        // Scalar references: serial rho + force.
        let mut rho_ref = Vec::new();
        scalar.compute_rho(&base, &list, &mut rho_ref);
        let mut fp = Vec::new();
        scalar.compute_embedding(&base, &rho_ref, &mut fp);
        for i in nlocal..ntotal {
            fp[i] = 0.01 * (i as f64);
        }
        let mut a_ref = base.clone();
        let ev_ref = scalar.compute_force(&mut a_ref, &list, &fp);
        // Blocked serial passes.
        let mut rho_blk = Vec::new();
        blocked.compute_rho(&base, &list, &mut rho_blk);
        assert_eq!(rho_blk.len(), rho_ref.len());
        for i in 0..ntotal {
            assert_eq!(rho_blk[i].to_bits(), rho_ref[i].to_bits(), "rho [{i}]");
        }
        let mut a_blk = base.clone();
        let ev_blk = blocked.compute_force(&mut a_blk, &list, &fp);
        assert_eq!(ev_blk.energy.to_bits(), ev_ref.energy.to_bits());
        assert_eq!(ev_blk.virial.to_bits(), ev_ref.virial.to_bits());
        assert_eq!(a_blk.f, a_ref.f);
        let pool = SpinPool::new(4);
        for exec in [ChunkExec::Serial, ChunkExec::Pool(&pool)] {
            let mut scratch = PairScratch::new();
            let mut rho = Vec::new();
            blocked.compute_rho_chunked(&base, &list, &mut rho, &exec, &mut scratch);
            for i in 0..ntotal {
                assert_eq!(rho[i].to_bits(), rho_ref[i].to_bits(), "chunked rho [{i}]");
            }
            let mut a = base.clone();
            let ev = blocked.compute_force_chunked(&mut a, &list, &fp, &exec, &mut scratch);
            assert_eq!(ev.energy.to_bits(), ev_ref.energy.to_bits());
            assert_eq!(ev.virial.to_bits(), ev_ref.virial.to_bits());
            assert_eq!(a.f, a_ref.f);
            // Split logging with the blocked inner loop.
            let mut split = SplitScratch::new();
            split.prepare(nlocal);
            blocked.log_rho_rows(&base, &list, &flags, true, &exec, &mut split);
            blocked.log_rho_rows(&base, &list, &flags, false, &exec, &mut split);
            let mut rho_s = vec![0.0; ntotal];
            kernels::replay_scalars_split(&split, &mut rho_s, &exec);
            for i in 0..ntotal {
                assert_eq!(rho_s[i].to_bits(), rho_ref[i].to_bits(), "split rho [{i}]");
            }
            let mut a = base.clone();
            split.prepare(nlocal);
            blocked.log_force_rows(&a, &list, &fp, &flags, true, &exec, &mut split);
            blocked.log_force_rows(&a, &list, &fp, &flags, false, &exec, &mut split);
            kernels::replay_forces_split(&split, &mut a.f, &exec);
            let (e, v) = kernels::fold_ev_split(&split);
            assert_eq!(e.to_bits(), ev_ref.energy.to_bits());
            assert_eq!(v.to_bits(), ev_ref.virial.to_bits());
            assert_eq!(a.f, a_ref.f);
        }
    }

    #[test]
    fn embedding_energy_is_negative_and_monotonic() {
        let eam = EamCu::lammps_bench();
        let atoms = Atoms::from_positions(vec![[0.0; 3]], 1);
        let mut fp = Vec::new();
        let e1 = eam.compute_embedding(&atoms, &[5.0], &mut fp);
        let e2 = eam.compute_embedding(&atoms, &[10.0], &mut fp);
        assert!(e1 < 0.0 && e2 < e1, "embedding must deepen with density");
    }
}
