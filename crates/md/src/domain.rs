//! 3D spatial domain decomposition (Fig. 1 of the paper).
//!
//! The global box is split into a `px x py x pz` grid of sub-boxes, one per
//! MPI rank. Ranks are numbered with x fastest, z slowest (LAMMPS `xyz`
//! ordering). Neighbor enumeration supports the paper's three regimes:
//! 26 neighbors (1 shell, full), 13 (1 shell, Newton half), and the
//! extended-experiment 124/62 sets (2 shells, when the cutoff exceeds the
//! sub-box edge — Fig. 15).

use crate::region::Box3;
use serde::{Deserialize, Serialize};

/// A static decomposition of a global periodic box into a grid of sub-boxes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Process grid dimensions `[px, py, pz]`.
    pub grid: [usize; 3],
    /// The global simulation box.
    pub global: Box3,
}

impl Decomposition {
    /// Decompose `global` over an explicit process grid.
    #[must_use]
    pub fn new(grid: [usize; 3], global: Box3) -> Self {
        assert!(grid.iter().all(|&g| g > 0), "process grid must be positive");
        Self { grid, global }
    }

    /// Choose a process grid for `nranks` ranks that minimizes total
    /// sub-box surface area (LAMMPS's default heuristic), then decompose.
    #[must_use]
    pub fn balanced(nranks: usize, global: Box3) -> Self {
        Self::new(Self::factor(nranks, global.lengths()), global)
    }

    /// Factor `n` into `[px, py, pz]` minimizing the per-rank communication
    /// surface `2*(ly*lz/px... )` for a box of the given edge lengths.
    #[must_use]
    pub fn factor(n: usize, lengths: [f64; 3]) -> [usize; 3] {
        assert!(n > 0);
        let mut best = [n, 1, 1];
        let mut best_surf = f64::INFINITY;
        for px in 1..=n {
            if !n.is_multiple_of(px) {
                continue;
            }
            let rem = n / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let sx = lengths[0] / px as f64;
                let sy = lengths[1] / py as f64;
                let sz = lengths[2] / pz as f64;
                let surf = sx * sy + sy * sz + sx * sz;
                if surf < best_surf {
                    best_surf = surf;
                    best = [px, py, pz];
                }
            }
        }
        best
    }

    /// Total rank count.
    #[must_use]
    pub fn nranks(&self) -> usize {
        self.grid[0] * self.grid[1] * self.grid[2]
    }

    /// Grid coordinate of a rank (x fastest).
    #[must_use]
    pub fn coord_of_rank(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.nranks(), "rank {rank} out of range");
        let [px, py, _] = self.grid;
        [rank % px, (rank / px) % py, rank / (px * py)]
    }

    /// Rank of a (possibly out-of-range) grid coordinate, wrapped
    /// periodically.
    #[must_use]
    pub fn rank_of_coord(&self, coord: [i64; 3]) -> usize {
        let mut c = [0usize; 3];
        for d in 0..3 {
            let g = self.grid[d] as i64;
            c[d] = coord[d].rem_euclid(g) as usize;
        }
        c[0] + self.grid[0] * (c[1] + self.grid[1] * c[2])
    }

    /// The sub-box owned by the rank at `coord`.
    #[must_use]
    pub fn sub_box(&self, coord: [usize; 3]) -> Box3 {
        let mut frac_lo = [0.0; 3];
        let mut frac_hi = [0.0; 3];
        for d in 0..3 {
            assert!(coord[d] < self.grid[d]);
            frac_lo[d] = coord[d] as f64 / self.grid[d] as f64;
            frac_hi[d] = (coord[d] + 1) as f64 / self.grid[d] as f64;
        }
        self.global.fractional_sub_box(frac_lo, frac_hi)
    }

    /// Edge lengths of every sub-box (uniform decomposition).
    #[must_use]
    pub fn sub_lengths(&self) -> [f64; 3] {
        let l = self.global.lengths();
        [
            l[0] / self.grid[0] as f64,
            l[1] / self.grid[1] as f64,
            l[2] / self.grid[2] as f64,
        ]
    }

    /// Which rank owns a (wrapped) global position.
    #[must_use]
    pub fn owner_of(&self, x: &[f64; 3]) -> usize {
        let l = self.global.lengths();
        let mut c = [0i64; 3];
        for d in 0..3 {
            let frac = (x[d] - self.global.lo[d]) / l[d];
            let idx = (frac * self.grid[d] as f64).floor() as i64;
            c[d] = idx.clamp(0, self.grid[d] as i64 - 1);
        }
        self.rank_of_coord(c)
    }

    /// How many shells of neighbor sub-boxes a ghost cutoff requires.
    ///
    /// 1 shell for the common case `r_ghost <= min sub-box edge`; 2 shells
    /// triggers the 62/124-neighbor regime of Fig. 15, etc.
    #[must_use]
    pub fn shells_for_cutoff(&self, r_ghost: f64) -> usize {
        let s = self.sub_lengths();
        let min_edge = s.iter().cloned().fold(f64::INFINITY, f64::min);
        (r_ghost / min_edge).ceil().max(1.0) as usize
    }
}

/// One neighbor direction in the decomposition grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NeighborOffset {
    /// Grid offset per dimension, each in `[-shells, +shells]`.
    pub d: [i8; 3],
}

impl NeighborOffset {
    /// Chebyshev distance (how many "rings" out this neighbor is).
    #[must_use]
    pub fn ring(&self) -> u8 {
        self.d.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0)
    }

    /// Number of non-zero components: 1 = face, 2 = edge, 3 = corner.
    /// This is also the hop count in a 3D-torus-mapped topology (Table 1).
    #[must_use]
    pub fn hops(&self) -> u8 {
        self.d.iter().filter(|&&v| v != 0).count() as u8
    }

    /// The opposite direction.
    #[must_use]
    pub fn opposite(&self) -> NeighborOffset {
        NeighborOffset {
            d: [-self.d[0], -self.d[1], -self.d[2]],
        }
    }

    /// True if this offset is in the "upper half" used with Newton's 3rd
    /// law: z > 0, or z == 0 and y > 0, or z == y == 0 and x > 0.
    /// With Newton on, a rank *receives ghosts from* the upper-half
    /// neighbors and *sends forces back* to them (Fig. 5).
    #[must_use]
    pub fn is_upper_half(&self) -> bool {
        let [x, y, z] = self.d;
        z > 0 || (z == 0 && (y > 0 || (y == 0 && x > 0)))
    }
}

/// Enumerate neighbor offsets for `shells` rings.
///
/// * `half = false`: all `(2s+1)^3 - 1` neighbors (26 for 1 shell, 124
///   for 2 shells).
/// * `half = true`: only the upper half (13 for 1 shell, 62 for 2 shells),
///   as used when Newton's 3rd law halves the ghost communication.
#[must_use]
pub fn neighbor_offsets(shells: usize, half: bool) -> Vec<NeighborOffset> {
    assert!(shells >= 1 && shells <= i8::MAX as usize);
    let s = shells as i8;
    let mut out = Vec::new();
    for dz in -s..=s {
        for dy in -s..=s {
            for dx in -s..=s {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let off = NeighborOffset { d: [dx, dy, dz] };
                if !half || off.is_upper_half() {
                    out.push(off);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize) -> Decomposition {
        Decomposition::new([n; 3], Box3::from_lengths([9.0; 3]))
    }

    #[test]
    fn rank_coord_roundtrip() {
        let d = Decomposition::new([2, 3, 4], Box3::from_lengths([1.0; 3]));
        for r in 0..d.nranks() {
            let c = d.coord_of_rank(r);
            assert_eq!(d.rank_of_coord([c[0] as i64, c[1] as i64, c[2] as i64]), r);
        }
    }

    #[test]
    fn coord_wraps_periodically() {
        let d = cube(3);
        assert_eq!(d.rank_of_coord([-1, 0, 0]), d.rank_of_coord([2, 0, 0]));
        assert_eq!(d.rank_of_coord([3, 4, -3]), d.rank_of_coord([0, 1, 0]));
    }

    #[test]
    fn sub_boxes_tile_global() {
        let d = cube(3);
        let mut vol = 0.0;
        for r in 0..d.nranks() {
            vol += d.sub_box(d.coord_of_rank(r)).volume();
        }
        assert!((vol - d.global.volume()).abs() < 1e-9);
    }

    #[test]
    fn owner_of_matches_sub_box() {
        let d = cube(3);
        let probe = [4.5, 1.0, 8.0];
        let r = d.owner_of(&probe);
        assert!(d.sub_box(d.coord_of_rank(r)).contains(&probe));
    }

    #[test]
    fn factor_prefers_cubes_for_cubic_boxes() {
        assert_eq!(Decomposition::factor(27, [1.0; 3]), [3, 3, 3]);
        assert_eq!(Decomposition::factor(8, [1.0; 3]), [2, 2, 2]);
    }

    #[test]
    fn factor_follows_aspect_ratio() {
        // A long-x box should get more cuts along x.
        let g = Decomposition::factor(4, [8.0, 1.0, 1.0]);
        assert_eq!(g, [4, 1, 1]);
    }

    #[test]
    fn neighbor_counts_match_paper() {
        // Paper: 26 neighbors full / 13 with Newton (1 shell);
        // 124 / 62 in the extended experiment (2 shells).
        assert_eq!(neighbor_offsets(1, false).len(), 26);
        assert_eq!(neighbor_offsets(1, true).len(), 13);
        assert_eq!(neighbor_offsets(2, false).len(), 124);
        assert_eq!(neighbor_offsets(2, true).len(), 62);
    }

    #[test]
    fn half_set_is_exact_complement() {
        let full = neighbor_offsets(1, false);
        let half = neighbor_offsets(1, true);
        for off in &full {
            let in_half = half.contains(off);
            let opp_in_half = half.contains(&off.opposite());
            assert!(in_half ^ opp_in_half, "offset {off:?} not split correctly");
        }
    }

    #[test]
    fn hops_classify_face_edge_corner() {
        // Table 1: faces (1 hop) x3, edges (2 hops) x6, corners (3 hops) x4
        // in the half set.
        let half = neighbor_offsets(1, true);
        let faces = half.iter().filter(|o| o.hops() == 1).count();
        let edges = half.iter().filter(|o| o.hops() == 2).count();
        let corners = half.iter().filter(|o| o.hops() == 3).count();
        assert_eq!((faces, edges, corners), (3, 6, 4));
    }

    #[test]
    fn shells_for_cutoff_regimes() {
        let d = cube(3); // sub-box edge 3.0
        assert_eq!(d.shells_for_cutoff(2.5), 1);
        assert_eq!(d.shells_for_cutoff(3.0), 1);
        assert_eq!(d.shells_for_cutoff(3.1), 2);
        assert_eq!(d.shells_for_cutoff(6.5), 3);
    }
}
