//! 3D spatial domain decomposition (Fig. 1 of the paper).
//!
//! The global box is split into a `px x py x pz` grid of sub-boxes, one per
//! MPI rank. Ranks are numbered with x fastest, z slowest (LAMMPS `xyz`
//! ordering). Neighbor enumeration supports the paper's three regimes:
//! 26 neighbors (1 shell, full), 13 (1 shell, Newton half), and the
//! extended-experiment 124/62 sets (2 shells, when the cutoff exceeds the
//! sub-box edge — Fig. 15).

use crate::region::Box3;
use crate::wirefmt;
use serde::{Deserialize, Serialize};

/// A static decomposition of a global periodic box into a grid of sub-boxes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Process grid dimensions `[px, py, pz]`.
    pub grid: [usize; 3],
    /// The global simulation box.
    pub global: Box3,
}

impl Decomposition {
    /// Decompose `global` over an explicit process grid.
    #[must_use]
    pub fn new(grid: [usize; 3], global: Box3) -> Self {
        assert!(grid.iter().all(|&g| g > 0), "process grid must be positive");
        Self { grid, global }
    }

    /// Choose a process grid for `nranks` ranks that minimizes total
    /// sub-box surface area (LAMMPS's default heuristic), then decompose.
    #[must_use]
    pub fn balanced(nranks: usize, global: Box3) -> Self {
        Self::new(Self::factor(nranks, global.lengths()), global)
    }

    /// Factor `n` into `[px, py, pz]` minimizing the per-rank communication
    /// surface `2*(ly*lz/px... )` for a box of the given edge lengths.
    #[must_use]
    pub fn factor(n: usize, lengths: [f64; 3]) -> [usize; 3] {
        assert!(n > 0);
        let mut best = [n, 1, 1];
        let mut best_surf = f64::INFINITY;
        for px in 1..=n {
            if !n.is_multiple_of(px) {
                continue;
            }
            let rem = n / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let sx = lengths[0] / px as f64;
                let sy = lengths[1] / py as f64;
                let sz = lengths[2] / pz as f64;
                let surf = sx * sy + sy * sz + sx * sz;
                if surf < best_surf {
                    best_surf = surf;
                    best = [px, py, pz];
                }
            }
        }
        best
    }

    /// Total rank count.
    #[must_use]
    pub fn nranks(&self) -> usize {
        self.grid[0] * self.grid[1] * self.grid[2]
    }

    /// Grid coordinate of a rank (x fastest).
    #[must_use]
    pub fn coord_of_rank(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.nranks(), "rank {rank} out of range");
        let [px, py, _] = self.grid;
        [rank % px, (rank / px) % py, rank / (px * py)]
    }

    /// Rank of a (possibly out-of-range) grid coordinate, wrapped
    /// periodically.
    #[must_use]
    pub fn rank_of_coord(&self, coord: [i64; 3]) -> usize {
        let mut c = [0usize; 3];
        for d in 0..3 {
            let g = self.grid[d] as i64;
            c[d] = coord[d].rem_euclid(g) as usize;
        }
        c[0] + self.grid[0] * (c[1] + self.grid[1] * c[2])
    }

    /// The sub-box owned by the rank at `coord`.
    #[must_use]
    pub fn sub_box(&self, coord: [usize; 3]) -> Box3 {
        let mut frac_lo = [0.0; 3];
        let mut frac_hi = [0.0; 3];
        for d in 0..3 {
            assert!(coord[d] < self.grid[d]);
            frac_lo[d] = coord[d] as f64 / self.grid[d] as f64;
            frac_hi[d] = (coord[d] + 1) as f64 / self.grid[d] as f64;
        }
        self.global.fractional_sub_box(frac_lo, frac_hi)
    }

    /// Edge lengths of every sub-box (uniform decomposition).
    #[must_use]
    pub fn sub_lengths(&self) -> [f64; 3] {
        let l = self.global.lengths();
        [
            l[0] / self.grid[0] as f64,
            l[1] / self.grid[1] as f64,
            l[2] / self.grid[2] as f64,
        ]
    }

    /// Which rank owns a (wrapped) global position.
    #[must_use]
    pub fn owner_of(&self, x: &[f64; 3]) -> usize {
        let l = self.global.lengths();
        let mut c = [0i64; 3];
        for d in 0..3 {
            let frac = (x[d] - self.global.lo[d]) / l[d];
            let idx = (frac * self.grid[d] as f64).floor() as i64;
            c[d] = idx.clamp(0, self.grid[d] as i64 - 1);
        }
        self.rank_of_coord(c)
    }

    /// How many shells of neighbor sub-boxes a ghost cutoff requires.
    ///
    /// 1 shell for the common case `r_ghost <= min sub-box edge`; 2 shells
    /// triggers the 62/124-neighbor regime of Fig. 15, etc.
    #[must_use]
    pub fn shells_for_cutoff(&self, r_ghost: f64) -> usize {
        let s = self.sub_lengths();
        let min_edge = s.iter().cloned().fold(f64::INFINITY, f64::min);
        (r_ghost / min_edge).ceil().max(1.0) as usize
    }
}

/// One neighbor direction in the decomposition grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NeighborOffset {
    /// Grid offset per dimension, each in `[-shells, +shells]`.
    pub d: [i8; 3],
}

impl NeighborOffset {
    /// Chebyshev distance (how many "rings" out this neighbor is).
    #[must_use]
    pub fn ring(&self) -> u8 {
        self.d.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0)
    }

    /// Number of non-zero components: 1 = face, 2 = edge, 3 = corner.
    /// This is also the hop count in a 3D-torus-mapped topology (Table 1).
    #[must_use]
    pub fn hops(&self) -> u8 {
        self.d.iter().filter(|&&v| v != 0).count() as u8
    }

    /// The opposite direction.
    #[must_use]
    pub fn opposite(&self) -> NeighborOffset {
        NeighborOffset {
            d: [-self.d[0], -self.d[1], -self.d[2]],
        }
    }

    /// True if this offset is in the "upper half" used with Newton's 3rd
    /// law: z > 0, or z == 0 and y > 0, or z == y == 0 and x > 0.
    /// With Newton on, a rank *receives ghosts from* the upper-half
    /// neighbors and *sends forces back* to them (Fig. 5).
    #[must_use]
    pub fn is_upper_half(&self) -> bool {
        let [x, y, z] = self.d;
        z > 0 || (z == 0 && (y > 0 || (y == 0 && x > 0)))
    }
}

/// Enumerate neighbor offsets for `shells` rings.
///
/// * `half = false`: all `(2s+1)^3 - 1` neighbors (26 for 1 shell, 124
///   for 2 shells).
/// * `half = true`: only the upper half (13 for 1 shell, 62 for 2 shells),
///   as used when Newton's 3rd law halves the ghost communication.
#[must_use]
pub fn neighbor_offsets(shells: usize, half: bool) -> Vec<NeighborOffset> {
    assert!(shells >= 1 && shells <= i8::MAX as usize);
    let s = shells as i8;
    let mut out = Vec::new();
    for dz in -s..=s {
        for dy in -s..=s {
            for dx in -s..=s {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let off = NeighborOffset { d: [dx, dy, dz] };
                if !half || off.is_upper_half() {
                    out.push(off);
                }
            }
        }
    }
    out
}

/// A node of the RCB split tree: either a final rank or a coordinate cut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RcbNode {
    /// Subtree is a single rank.
    Leaf(usize),
    /// Binary split: positions with `x[dim] < cut` descend into `below`,
    /// the rest into `above` (indices into the tree's node vector).
    Split {
        dim: usize,
        cut: f64,
        below: usize,
        above: usize,
    },
}

/// A recursive-coordinate-bisection decomposition: the global box is split
/// by weighted-median cuts along the longest axis until every rank owns one
/// half-open box. Unlike [`Decomposition`], sub-boxes are not congruent —
/// each holds (close to) the same number of atoms, which is what balances
/// density-skewed systems.
///
/// The construction is deterministic: cuts are exact order statistics of
/// the coordinates (`sort_by(total_cmp)`), so the same positions always
/// yield the same boxes on any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcbDecomposition {
    /// The global simulation box.
    pub global: Box3,
    /// Per-rank half-open sub-box; the boxes tile `global` exactly.
    pub boxes: Vec<Box3>,
    /// Split tree for `owner_of` descent; node 0 is the root.
    tree: Vec<RcbNode>,
}

/// Typed failure of an RCB build. The `split` partition tests
/// `p[dim] < cut`, which a NaN coordinate always fails — it would land on
/// the hi side of *every* cut and silently corrupt ownership. Matching the
/// lockstep bisector's NaN-is-divergence rule, a non-finite input is a
/// detected error, never a quietly mis-owned atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RcbError {
    /// `positions[index]` has a NaN or infinite component along `dim`.
    NonFiniteCoordinate {
        /// Index into the positions slice handed to the build.
        index: usize,
        /// Offending dimension (0 = x, 1 = y, 2 = z).
        dim: usize,
    },
}

impl std::fmt::Display for RcbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RcbError::NonFiniteCoordinate { index, dim } => write!(
                f,
                "RCB input position {index} has a non-finite coordinate along dim {dim}"
            ),
        }
    }
}

impl std::error::Error for RcbError {}

impl RcbDecomposition {
    /// Build an RCB decomposition of `global` into `nranks` boxes balanced
    /// over `positions` (which need not be wrapped; they are wrapped here).
    ///
    /// # Panics
    /// On a non-finite coordinate; rebuilds from untrusted mid-run
    /// positions should use [`RcbDecomposition::try_build`].
    #[must_use]
    pub fn build(nranks: usize, positions: &[[f64; 3]], global: &Box3) -> Self {
        match Self::try_build(nranks, positions, global) {
            Ok(rcb) => rcb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible build: rejects NaN/infinite coordinates with a typed
    /// error instead of letting them land hi-side of every cut.
    pub fn try_build(
        nranks: usize,
        positions: &[[f64; 3]],
        global: &Box3,
    ) -> Result<Self, RcbError> {
        assert!(nranks > 0, "RCB needs at least one rank");
        for (index, p) in positions.iter().enumerate() {
            for (dim, c) in p.iter().enumerate() {
                if !c.is_finite() {
                    return Err(RcbError::NonFiniteCoordinate { index, dim });
                }
            }
        }
        let mut pts: Vec<[f64; 3]> = positions.iter().map(|p| global.wrap(*p).0).collect();
        let mut boxes = vec![Box3::from_lengths([1.0; 3]); nranks];
        let mut tree = Vec::new();
        let n = pts.len();
        Self::split(&mut tree, &mut boxes, &mut pts, 0..n, *global, 0, nranks);
        Ok(RcbDecomposition {
            global: *global,
            boxes,
            tree,
        })
    }

    /// Recursively split `pts[range]` (in-place partitioned) over ranks
    /// `[rank0, rank0 + count)` inside `bounds`, appending tree nodes.
    /// Returns the index of the subtree's root node.
    #[allow(clippy::too_many_arguments)]
    fn split(
        tree: &mut Vec<RcbNode>,
        boxes: &mut [Box3],
        pts: &mut [[f64; 3]],
        range: std::ops::Range<usize>,
        bounds: Box3,
        rank0: usize,
        count: usize,
    ) -> usize {
        if count == 1 {
            boxes[rank0] = bounds;
            tree.push(RcbNode::Leaf(rank0));
            return tree.len() - 1;
        }
        let n_below = count / 2;
        let l = bounds.lengths();
        let slice = &mut pts[range.clone()];
        let npts = slice.len();
        // A coordinate cut can only fall *between* distinct values, and
        // lattices hold whole planes of tied coordinates, so the
        // achievable below-counts are quantized — differently per
        // dimension. Score every dimension by the tie boundary closest
        // to the ideal weighted split and keep the best (ties broken
        // toward the longest edge), cutting midway between the two
        // distinct values so owner_of never sits on an atom coordinate.
        let target = npts as f64 * n_below as f64 / count as f64;
        let mut best: Option<(f64, f64, usize, f64)> = None; // (err, -len, dim, cut)
        for d in 0..3 {
            let mut coords: Vec<f64> = slice.iter().map(|p| p[d]).collect();
            coords.sort_by(f64::total_cmp);
            for m in 1..npts {
                if coords[m] > coords[m - 1] {
                    let err = (m as f64 - target).abs();
                    let key = (err, -l[d], d, 0.5 * (coords[m - 1] + coords[m]));
                    if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                        best = Some(key);
                    }
                }
            }
        }
        let (dim, mut cut) = match best {
            Some((_, _, d, c)) => (d, c),
            None => {
                // Empty or fully degenerate point set: halve the longest
                // edge so the recursion still tiles the bounds.
                let d = (0..3).fold(0, |b, d| if l[d] > l[b] { d } else { b });
                (d, 0.5 * (bounds.lo[d] + bounds.hi[d]))
            }
        };
        let eps = 1e-9 * (bounds.hi[dim] - bounds.lo[dim]);
        cut = cut.clamp(bounds.lo[dim] + eps, bounds.hi[dim] - eps);
        // Stable in-place partition: everything `< cut` first.
        let mut lo_side: Vec<[f64; 3]> = Vec::with_capacity(npts);
        let mut hi_side: Vec<[f64; 3]> = Vec::with_capacity(npts);
        for p in slice.iter() {
            if p[dim] < cut {
                lo_side.push(*p);
            } else {
                hi_side.push(*p);
            }
        }
        let n_lo = lo_side.len();
        slice[..n_lo].copy_from_slice(&lo_side);
        slice[n_lo..].copy_from_slice(&hi_side);
        let mut below_bounds = bounds;
        below_bounds.hi[dim] = cut;
        let mut above_bounds = bounds;
        above_bounds.lo[dim] = cut;
        let here = tree.len();
        tree.push(RcbNode::Split {
            dim,
            cut,
            below: 0,
            above: 0,
        });
        let below = Self::split(
            tree,
            boxes,
            pts,
            range.start..range.start + n_lo,
            below_bounds,
            rank0,
            n_below,
        );
        let above = Self::split(
            tree,
            boxes,
            pts,
            range.start + n_lo..range.end,
            above_bounds,
            rank0 + n_below,
            count - n_below,
        );
        if let RcbNode::Split {
            below: b, above: a, ..
        } = &mut tree[here]
        {
            *b = below;
            *a = above;
        }
        here
    }

    /// Total rank count.
    #[must_use]
    pub fn nranks(&self) -> usize {
        self.boxes.len()
    }

    /// Which rank owns a wrapped global position (tree descent; positions
    /// outside the global box are wrapped first).
    #[must_use]
    pub fn owner_of(&self, x: &[f64; 3]) -> usize {
        let (w, _) = self.global.wrap(*x);
        let mut node = 0;
        loop {
            match self.tree[node] {
                RcbNode::Leaf(rank) => return rank,
                RcbNode::Split {
                    dim,
                    cut,
                    below,
                    above,
                } => node = if w[dim] < cut { below } else { above },
            }
        }
    }

    /// Max-over-mean atom-count imbalance of `positions` under this
    /// decomposition (1.0 = perfect balance).
    #[must_use]
    pub fn imbalance_of(&self, positions: &[[f64; 3]]) -> f64 {
        let mut counts = vec![0usize; self.nranks()];
        for p in positions {
            counts[self.owner_of(p)] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let mean = positions.len() as f64 / self.nranks() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Append this decomposition (boxes *and* the private split tree) to a
    /// checkpoint payload in the [`crate::wirefmt`] format.
    pub fn wire_encode(&self, out: &mut Vec<u8>) {
        wirefmt::put_f64x3(out, &self.global.lo);
        wirefmt::put_f64x3(out, &self.global.hi);
        wirefmt::put_usize(out, self.boxes.len());
        for b in &self.boxes {
            wirefmt::put_f64x3(out, &b.lo);
            wirefmt::put_f64x3(out, &b.hi);
        }
        wirefmt::put_usize(out, self.tree.len());
        for node in &self.tree {
            match node {
                RcbNode::Leaf(rank) => {
                    wirefmt::put_u8(out, 0);
                    wirefmt::put_usize(out, *rank);
                }
                RcbNode::Split {
                    dim,
                    cut,
                    below,
                    above,
                } => {
                    wirefmt::put_u8(out, 1);
                    wirefmt::put_usize(out, *dim);
                    wirefmt::put_f64(out, *cut);
                    wirefmt::put_usize(out, *below);
                    wirefmt::put_usize(out, *above);
                }
            }
        }
    }

    /// Decode a decomposition previously written by
    /// [`RcbDecomposition::wire_encode`]. Tree structure is validated
    /// (node indices in range, leaf ranks within the box count, child
    /// links strictly forward) so a corrupt payload can never send
    /// [`RcbDecomposition::owner_of`] out of bounds or into a cycle.
    pub fn wire_decode(r: &mut wirefmt::WireReader<'_>) -> Result<Self, wirefmt::WireError> {
        let global = Box3 {
            lo: r.f64x3()?,
            hi: r.f64x3()?,
        };
        let nboxes = r.usize_(true)?;
        let mut boxes = Vec::with_capacity(nboxes);
        for _ in 0..nboxes {
            boxes.push(Box3 {
                lo: r.f64x3()?,
                hi: r.f64x3()?,
            });
        }
        let nnodes = r.usize_(true)?;
        let mut tree = Vec::with_capacity(nnodes);
        let bad = |what: String| wirefmt::WireError { at: 0, what };
        for i in 0..nnodes {
            match r.u8_()? {
                0 => {
                    let rank = r.usize_(false)?;
                    if rank >= nboxes {
                        return Err(bad(format!("RCB leaf rank {rank} >= {nboxes} boxes")));
                    }
                    tree.push(RcbNode::Leaf(rank));
                }
                1 => {
                    let dim = r.usize_(false)?;
                    let cut = r.f64_()?;
                    let below = r.usize_(false)?;
                    let above = r.usize_(false)?;
                    if dim >= 3 {
                        return Err(bad(format!("RCB split dim {dim} out of range")));
                    }
                    // Children are appended after their parent by `split`,
                    // so strictly-forward links are both a format invariant
                    // and the cycle guard for `owner_of`'s descent.
                    if below <= i || above <= i || below >= nnodes || above >= nnodes {
                        return Err(bad(format!(
                            "RCB split node {i} has non-forward children {below}/{above} of {nnodes}"
                        )));
                    }
                    tree.push(RcbNode::Split {
                        dim,
                        cut,
                        below,
                        above,
                    });
                }
                t => return Err(bad(format!("unknown RCB node tag {t}"))),
            }
        }
        if tree.is_empty() && !boxes.is_empty() {
            return Err(bad("RCB tree empty but boxes present".to_owned()));
        }
        Ok(RcbDecomposition {
            global,
            boxes,
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: usize) -> Decomposition {
        Decomposition::new([n; 3], Box3::from_lengths([9.0; 3]))
    }

    #[test]
    fn rank_coord_roundtrip() {
        let d = Decomposition::new([2, 3, 4], Box3::from_lengths([1.0; 3]));
        for r in 0..d.nranks() {
            let c = d.coord_of_rank(r);
            assert_eq!(d.rank_of_coord([c[0] as i64, c[1] as i64, c[2] as i64]), r);
        }
    }

    #[test]
    fn coord_wraps_periodically() {
        let d = cube(3);
        assert_eq!(d.rank_of_coord([-1, 0, 0]), d.rank_of_coord([2, 0, 0]));
        assert_eq!(d.rank_of_coord([3, 4, -3]), d.rank_of_coord([0, 1, 0]));
    }

    #[test]
    fn sub_boxes_tile_global() {
        let d = cube(3);
        let mut vol = 0.0;
        for r in 0..d.nranks() {
            vol += d.sub_box(d.coord_of_rank(r)).volume();
        }
        assert!((vol - d.global.volume()).abs() < 1e-9);
    }

    #[test]
    fn owner_of_matches_sub_box() {
        let d = cube(3);
        let probe = [4.5, 1.0, 8.0];
        let r = d.owner_of(&probe);
        assert!(d.sub_box(d.coord_of_rank(r)).contains(&probe));
    }

    #[test]
    fn factor_prefers_cubes_for_cubic_boxes() {
        assert_eq!(Decomposition::factor(27, [1.0; 3]), [3, 3, 3]);
        assert_eq!(Decomposition::factor(8, [1.0; 3]), [2, 2, 2]);
    }

    #[test]
    fn factor_follows_aspect_ratio() {
        // A long-x box should get more cuts along x.
        let g = Decomposition::factor(4, [8.0, 1.0, 1.0]);
        assert_eq!(g, [4, 1, 1]);
    }

    #[test]
    fn neighbor_counts_match_paper() {
        // Paper: 26 neighbors full / 13 with Newton (1 shell);
        // 124 / 62 in the extended experiment (2 shells).
        assert_eq!(neighbor_offsets(1, false).len(), 26);
        assert_eq!(neighbor_offsets(1, true).len(), 13);
        assert_eq!(neighbor_offsets(2, false).len(), 124);
        assert_eq!(neighbor_offsets(2, true).len(), 62);
    }

    #[test]
    fn half_set_is_exact_complement() {
        let full = neighbor_offsets(1, false);
        let half = neighbor_offsets(1, true);
        for off in &full {
            let in_half = half.contains(off);
            let opp_in_half = half.contains(&off.opposite());
            assert!(in_half ^ opp_in_half, "offset {off:?} not split correctly");
        }
    }

    #[test]
    fn hops_classify_face_edge_corner() {
        // Table 1: faces (1 hop) x3, edges (2 hops) x6, corners (3 hops) x4
        // in the half set.
        let half = neighbor_offsets(1, true);
        let faces = half.iter().filter(|o| o.hops() == 1).count();
        let edges = half.iter().filter(|o| o.hops() == 2).count();
        let corners = half.iter().filter(|o| o.hops() == 3).count();
        assert_eq!((faces, edges, corners), (3, 6, 4));
    }

    #[test]
    fn shells_for_cutoff_regimes() {
        let d = cube(3); // sub-box edge 3.0
        assert_eq!(d.shells_for_cutoff(2.5), 1);
        assert_eq!(d.shells_for_cutoff(3.0), 1);
        assert_eq!(d.shells_for_cutoff(3.1), 2);
        assert_eq!(d.shells_for_cutoff(6.5), 3);
    }

    /// Deterministic pseudo-uniform positions (no RNG dependency).
    fn scatter(n: usize, global: &Box3) -> Vec<[f64; 3]> {
        let l = global.lengths();
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let u = |s: u32| ((h >> s) & 0xffff) as f64 / 65536.0;
                [
                    global.lo[0] + u(0) * l[0],
                    global.lo[1] + u(16) * l[1],
                    global.lo[2] + u(32) * l[2],
                ]
            })
            .collect()
    }

    #[test]
    fn rcb_boxes_tile_the_global_box() {
        let global = Box3::from_lengths([12.0, 8.0, 6.0]);
        let pts = scatter(500, &global);
        for nranks in [1, 2, 3, 5, 8, 48] {
            let rcb = RcbDecomposition::build(nranks, &pts, &global);
            let vol: f64 = rcb.boxes.iter().map(Box3::volume).sum();
            assert!(
                (vol - global.volume()).abs() < 1e-6 * global.volume(),
                "{nranks} ranks: volume {vol} vs {}",
                global.volume()
            );
        }
    }

    #[test]
    fn rcb_owner_matches_boxes() {
        let global = Box3::from_lengths([10.0; 3]);
        let pts = scatter(300, &global);
        let rcb = RcbDecomposition::build(7, &pts, &global);
        for p in &pts {
            let r = rcb.owner_of(p);
            assert!(rcb.boxes[r].contains(p), "{p:?} not in box of rank {r}");
        }
    }

    #[test]
    fn rcb_balances_a_density_gradient() {
        // Density ramp along x: pile most atoms into low x. A uniform grid
        // leaves the high-x ranks nearly empty; RCB stays near 1.0.
        let global = Box3::from_lengths([16.0, 4.0, 4.0]);
        let mut pts = Vec::new();
        for p in scatter(2000, &global) {
            let frac = (p[0] - global.lo[0]) / global.lengths()[0];
            let h = ((pts.len() as u64 + 17).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as f64
                / 4294967296.0;
            if h > 0.9 * frac {
                pts.push(p);
            }
        }
        let nranks = 8;
        let rcb = RcbDecomposition::build(nranks, &pts, &global);
        let grid = Decomposition::new([8, 1, 1], global);
        let mut grid_counts = vec![0usize; nranks];
        for p in &pts {
            grid_counts[grid.owner_of(p)] += 1;
        }
        let grid_imb =
            *grid_counts.iter().max().unwrap() as f64 / (pts.len() as f64 / nranks as f64);
        let rcb_imb = rcb.imbalance_of(&pts);
        assert!(rcb_imb < 1.15, "RCB imbalance {rcb_imb} should be near 1.0");
        assert!(
            rcb_imb < 0.75 * grid_imb,
            "RCB {rcb_imb} must clearly beat the grid {grid_imb}"
        );
    }

    #[test]
    fn rcb_is_deterministic() {
        let global = Box3::from_lengths([9.0; 3]);
        let pts = scatter(400, &global);
        let a = RcbDecomposition::build(6, &pts, &global);
        let b = RcbDecomposition::build(6, &pts, &global);
        assert_eq!(a, b);
    }

    #[test]
    fn rcb_rejects_non_finite_coordinates() {
        let global = Box3::from_lengths([8.0; 3]);
        let mut pts = scatter(50, &global);
        pts[13][1] = f64::NAN;
        assert_eq!(
            RcbDecomposition::try_build(4, &pts, &global),
            Err(RcbError::NonFiniteCoordinate { index: 13, dim: 1 })
        );
        pts[13][1] = f64::INFINITY;
        assert_eq!(
            RcbDecomposition::try_build(4, &pts, &global),
            Err(RcbError::NonFiniteCoordinate { index: 13, dim: 1 })
        );
        pts[13][1] = 2.0;
        assert!(RcbDecomposition::try_build(4, &pts, &global).is_ok());
        let msg = RcbError::NonFiniteCoordinate { index: 13, dim: 1 }.to_string();
        assert!(msg.contains("13") && msg.contains("dim 1"), "{msg}");
    }

    #[test]
    fn rcb_handles_empty_and_tiny_inputs() {
        let global = Box3::from_lengths([4.0; 3]);
        let rcb = RcbDecomposition::build(4, &[], &global);
        assert_eq!(rcb.nranks(), 4);
        let vol: f64 = rcb.boxes.iter().map(Box3::volume).sum();
        assert!((vol - global.volume()).abs() < 1e-9);
        // One atom, many ranks: every position still resolves to an owner.
        let rcb = RcbDecomposition::build(5, &[[1.0; 3]], &global);
        assert!(rcb.owner_of(&[3.9, 0.1, 2.0]) < 5);
    }

    #[test]
    fn rcb_wire_round_trip_is_lossless() {
        let global = Box3::from_lengths([9.0; 3]);
        let pts = scatter(300, &global);
        let rcb = RcbDecomposition::build(7, &pts, &global);
        let mut bytes = Vec::new();
        rcb.wire_encode(&mut bytes);
        let mut r = wirefmt::WireReader::new(&bytes);
        let back = RcbDecomposition::wire_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, rcb);
        for p in &pts {
            assert_eq!(back.owner_of(p), rcb.owner_of(p));
        }
    }

    #[test]
    fn rcb_wire_decode_rejects_malformed_trees() {
        let global = Box3::from_lengths([9.0; 3]);
        let pts = scatter(64, &global);
        let rcb = RcbDecomposition::build(4, &pts, &global);
        let mut bytes = Vec::new();
        rcb.wire_encode(&mut bytes);
        // Truncation is typed, not a panic.
        let mut r = wirefmt::WireReader::new(&bytes[..bytes.len() - 3]);
        assert!(RcbDecomposition::wire_decode(&mut r).is_err());
        // A self-referential split (cycle) is rejected before owner_of
        // could ever spin on it: re-encode with the root's children
        // pointing at itself.
        let mut hostile = Vec::new();
        wirefmt::put_f64x3(&mut hostile, &global.lo);
        wirefmt::put_f64x3(&mut hostile, &global.hi);
        wirefmt::put_usize(&mut hostile, 1);
        wirefmt::put_f64x3(&mut hostile, &global.lo);
        wirefmt::put_f64x3(&mut hostile, &global.hi);
        wirefmt::put_usize(&mut hostile, 1);
        wirefmt::put_u8(&mut hostile, 1);
        wirefmt::put_usize(&mut hostile, 0); // dim
        wirefmt::put_f64(&mut hostile, 4.5); // cut
        wirefmt::put_usize(&mut hostile, 0); // below -> itself
        wirefmt::put_usize(&mut hostile, 0); // above -> itself
        let mut r = wirefmt::WireReader::new(&hostile);
        let e = RcbDecomposition::wire_decode(&mut r).unwrap_err();
        assert!(e.to_string().contains("non-forward"), "{e}");
    }
}
