//! A minimal little-endian wire format for checkpoint payloads.
//!
//! The workspace's vendored `serde` is a marker-trait stub (no data
//! model), so anything that needs real bytes — the checkpoint/restart
//! subsystem — encodes by hand through these primitives. The format is
//! deliberately boring: fixed-width little-endian scalars, `u64` length
//! prefixes, one byte per bool/option marker. Readers never panic; every
//! malformed input surfaces as a typed [`WireError`].

use std::fmt;

/// Typed failure of a wire read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset the read failed at.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode failed at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for WireError {}

/// Append a bool as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its IEEE-754 bits, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `[f64; 3]` triple.
pub fn put_f64x3(out: &mut Vec<u8>, v: &[f64; 3]) {
    for c in v {
        put_f64(out, *c);
    }
}

/// Append a string as length + UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_usize(out, v.len());
    out.extend_from_slice(v.as_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes left.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn err(&self, what: impl Into<String>) -> WireError {
        WireError {
            at: self.pos,
            what: what.into(),
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.err(format!("needed {n} bytes, {} remain", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn fixed<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool_(&mut self) -> Result<bool, WireError> {
        match self.fixed::<1>()?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a `u8`.
    pub fn u8_(&mut self) -> Result<u8, WireError> {
        Ok(self.fixed::<1>()?[0])
    }

    /// Read a `u32`.
    pub fn u32_(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.fixed()?))
    }

    /// Read a `u64`.
    pub fn u64_(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.fixed()?))
    }

    /// Read an `f64`.
    pub fn f64_(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.fixed()?))
    }

    /// Read a `[f64; 3]` triple.
    pub fn f64x3(&mut self) -> Result<[f64; 3], WireError> {
        Ok([self.f64_()?, self.f64_()?, self.f64_()?])
    }

    /// Read a `usize` stored as `u64`; rejects values that cannot index
    /// this platform or that exceed the remaining payload when used as a
    /// length (callers pass `bounded = true` for length prefixes so a
    /// corrupt length cannot drive a huge allocation).
    pub fn usize_(&mut self, bounded: bool) -> Result<usize, WireError> {
        let raw = self.u64_()?;
        let v = usize::try_from(raw).map_err(|_| self.err(format!("{raw} overflows usize")))?;
        if bounded && v > self.remaining() {
            return Err(self.err(format!(
                "length {v} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(v)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<&'a str, WireError> {
        let n = self.usize_(true)?;
        let at = self.pos;
        std::str::from_utf8(self.take(n)?).map_err(|e| WireError {
            at,
            what: format!("invalid utf-8: {e}"),
        })
    }

    /// Error unless every byte was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(self.err(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        put_bool(&mut out, true);
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 3);
        put_usize(&mut out, 42);
        put_f64(&mut out, -1.5);
        put_f64x3(&mut out, &[0.25, -0.5, 1e300]);
        put_str(&mut out, "tofumd");
        let mut r = WireReader::new(&out);
        assert!(r.bool_().unwrap());
        assert_eq!(r.u8_().unwrap(), 7);
        assert_eq!(r.u32_().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64_().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize_(false).unwrap(), 42);
        assert_eq!(r.f64_().unwrap(), -1.5);
        assert_eq!(r.f64x3().unwrap(), [0.25, -0.5, 1e300]);
        assert_eq!(r.str_().unwrap(), "tofumd");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_bad_bytes_are_typed() {
        let mut r = WireReader::new(&[1, 2]);
        let e = r.u32_().unwrap_err();
        assert!(e.to_string().contains("needed 4 bytes"), "{e}");
        let mut r = WireReader::new(&[9]);
        assert!(r.bool_().unwrap_err().to_string().contains("invalid bool"));
    }

    #[test]
    fn bounded_length_rejects_hostile_prefix() {
        let mut out = Vec::new();
        put_usize(&mut out, usize::MAX / 2);
        let mut r = WireReader::new(&out);
        let e = r.usize_(true).unwrap_err();
        assert!(e.to_string().contains("exceeds"), "{e}");
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut r = WireReader::new(&[0, 0]);
        assert_eq!(r.u8_().unwrap(), 0);
        assert!(r.finish().unwrap_err().to_string().contains("trailing"));
    }
}
