//! FCC lattice builders matching the paper's initial configurations
//! (Table 2: `lattice 0.8442 FCC` for LJ, `lattice 3.615 FCC` for EAM Cu).

use crate::region::Box3;

/// The four basis sites of an FCC conventional cell, in cell fractions.
pub const FCC_BASIS: [[f64; 3]; 4] = [
    [0.0, 0.0, 0.0],
    [0.5, 0.5, 0.0],
    [0.5, 0.0, 0.5],
    [0.0, 0.5, 0.5],
];

/// The eight basis sites of a diamond conventional cell (FCC plus the
/// tetrahedral sublattice) — silicon's structure, used by the
/// Stillinger-Weber workloads.
pub const DIAMOND_BASIS: [[f64; 3]; 8] = [
    [0.0, 0.0, 0.0],
    [0.5, 0.5, 0.0],
    [0.5, 0.0, 0.5],
    [0.0, 0.5, 0.5],
    [0.25, 0.25, 0.25],
    [0.75, 0.75, 0.25],
    [0.75, 0.25, 0.75],
    [0.25, 0.75, 0.75],
];

/// FCC lattice specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FccLattice {
    /// Conventional-cell edge length (distance units).
    pub cell: f64,
}

impl FccLattice {
    /// Lattice from an explicit conventional-cell edge (LAMMPS `metal`
    /// convention, e.g. 3.615 angstrom for Cu).
    #[must_use]
    pub fn from_cell(cell: f64) -> Self {
        assert!(cell > 0.0, "lattice constant must be positive");
        Self { cell }
    }

    /// Lattice from a reduced density rho* (LAMMPS `lj` convention:
    /// `lattice fcc 0.8442` means 4 atoms per cell at number density
    /// rho* = 4 / cell^3, so cell = (4/rho*)^(1/3)).
    #[must_use]
    pub fn from_reduced_density(rho: f64) -> Self {
        assert!(rho > 0.0, "reduced density must be positive");
        Self {
            cell: (4.0 / rho).cbrt(),
        }
    }

    /// Number density of this lattice (atoms per unit volume).
    #[must_use]
    pub fn density(&self) -> f64 {
        4.0 / self.cell.powi(3)
    }

    /// Build an `nx * ny * nz` block of conventional cells. Returns the
    /// periodic box and all atom positions (4 atoms per cell).
    #[must_use]
    pub fn build(&self, nx: usize, ny: usize, nz: usize) -> (Box3, Vec<[f64; 3]>) {
        assert!(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
        let a = self.cell;
        let b = Box3::from_lengths([a * nx as f64, a * ny as f64, a * nz as f64]);
        let mut pos = Vec::with_capacity(4 * nx * ny * nz);
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let base = [ix as f64 * a, iy as f64 * a, iz as f64 * a];
                    for site in &FCC_BASIS {
                        pos.push([
                            base[0] + site[0] * a,
                            base[1] + site[1] * a,
                            base[2] + site[2] * a,
                        ]);
                    }
                }
            }
        }
        (b, pos)
    }

    /// Build an `nx * ny * nz` block of *diamond* cells (8 atoms per
    /// cell): the silicon structure for Stillinger-Weber runs.
    #[must_use]
    pub fn build_diamond(&self, nx: usize, ny: usize, nz: usize) -> (Box3, Vec<[f64; 3]>) {
        assert!(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
        let a = self.cell;
        let b = Box3::from_lengths([a * nx as f64, a * ny as f64, a * nz as f64]);
        let mut pos = Vec::with_capacity(8 * nx * ny * nz);
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let base = [ix as f64 * a, iy as f64 * a, iz as f64 * a];
                    for site in &DIAMOND_BASIS {
                        pos.push([
                            base[0] + site[0] * a,
                            base[1] + site[1] * a,
                            base[2] + site[2] * a,
                        ]);
                    }
                }
            }
        }
        (b, pos)
    }

    /// Choose a near-cubic cell grid containing at least `n_target` atoms.
    ///
    /// The paper quotes workloads by atom count (65 K, 1.7 M, 4 194 304...);
    /// this helper maps a target count back to a cell grid like the LAMMPS
    /// benchmark scripts do.
    #[must_use]
    pub fn cells_for_atoms(n_target: usize) -> (usize, usize, usize) {
        assert!(n_target > 0);
        let cells = (n_target as f64 / 4.0).cbrt();
        let n = cells.round().max(1.0) as usize;
        // Refine so 4*nx*ny*nz >= n_target with a near-cubic shape.
        let mut dims = [n, n, n];
        let mut i = 0;
        while 4 * dims[0] * dims[1] * dims[2] < n_target {
            dims[i % 3] += 1;
            i += 1;
        }
        (dims[0], dims[1], dims[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_density_roundtrip() {
        let lat = FccLattice::from_reduced_density(0.8442);
        assert!((lat.density() - 0.8442).abs() < 1e-12);
        // LAMMPS prints 1.6796 for this lattice constant.
        assert!((lat.cell - 1.6796).abs() < 1e-4);
    }

    #[test]
    fn build_counts_and_bounds() {
        let lat = FccLattice::from_cell(3.615);
        let (b, pos) = lat.build(3, 4, 5);
        assert_eq!(pos.len(), 4 * 3 * 4 * 5);
        assert!((b.lengths()[0] - 3.0 * 3.615).abs() < 1e-12);
        for p in &pos {
            assert!(b.contains(p), "atom {p:?} escaped box");
        }
    }

    #[test]
    fn no_duplicate_sites() {
        let lat = FccLattice::from_cell(1.0);
        let (_, pos) = lat.build(2, 2, 2);
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                let d2: f64 = (0..3).map(|d| (pos[i][d] - pos[j][d]).powi(2)).sum();
                assert!(d2 > 1e-6, "duplicate lattice sites {i} {j}");
            }
        }
    }

    #[test]
    fn cells_for_atoms_meets_target() {
        for &target in &[100usize, 65_536, 1_000, 4_194_304] {
            let (nx, ny, nz) = FccLattice::cells_for_atoms(target);
            assert!(4 * nx * ny * nz >= target);
            // Near-cubic: dims within 2 of each other.
            let dims = [nx, ny, nz];
            let max = *dims.iter().max().unwrap();
            let min = *dims.iter().min().unwrap();
            assert!(max - min <= 2, "grid too lopsided for {target}: {dims:?}");
        }
    }

    #[test]
    fn diamond_cell_has_tetrahedral_bonds() {
        // Silicon: a = 5.431; nearest neighbor at a*sqrt(3)/4.
        let lat = FccLattice::from_cell(5.431);
        let (b, pos) = lat.build_diamond(2, 2, 2);
        assert_eq!(pos.len(), 8 * 8);
        let expect = 5.431 * 3f64.sqrt() / 4.0;
        // Atom 0's nearest neighbor (across PBC) sits at the bond length.
        let mut min_d = f64::INFINITY;
        for j in 1..pos.len() {
            let dx = b.minimum_image(&pos[0], &pos[j]);
            let d = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2]).sqrt();
            min_d = min_d.min(d);
        }
        assert!((min_d - expect).abs() < 1e-9, "bond {min_d} vs {expect}");
    }

    #[test]
    fn paper_lj_workload_grid() {
        // 4,194,304 = 2^22: the strong-scaling LJ workload (Fig. 13).
        let (nx, ny, nz) = FccLattice::cells_for_atoms(4_194_304);
        assert!(4 * nx * ny * nz >= 4_194_304);
        assert_eq!((nx, ny, nz), (102, 102, 102));
    }
}
