//! Unit systems, mirroring LAMMPS `units lj` and `units metal`.
//!
//! The paper's two workloads (Table 2) use `lj` units for the Lennard-Jones
//! benchmark and `metal` units for the EAM (Cu) benchmark. Only the
//! conversion factors that feed thermodynamic output (temperature, pressure,
//! energy) are needed here; the force kernels are unit-agnostic.

use serde::{Deserialize, Serialize};

/// Which LAMMPS-style unit system a simulation runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitSystem {
    /// Reduced Lennard-Jones units: sigma = epsilon = mass = k_B = 1.
    /// Time unit is "tau"; the paper reports LJ performance in tau/day.
    Lj,
    /// LAMMPS `metal` units: distance in angstroms, energy in eV, time in
    /// picoseconds, temperature in kelvin, pressure in bars.
    /// The paper reports EAM performance in microseconds (of physical
    /// time) per day.
    Metal,
}

impl UnitSystem {
    /// Boltzmann constant in this unit system's (energy / temperature).
    #[must_use]
    pub fn boltzmann(self) -> f64 {
        match self {
            UnitSystem::Lj => 1.0,
            // eV / K
            UnitSystem::Metal => 8.617_333_262e-5,
        }
    }

    /// Conversion from (energy / volume) to the unit system's pressure unit.
    ///
    /// * `lj`: pressure is already epsilon/sigma^3, factor 1.
    /// * `metal`: eV/angstrom^3 -> bar.
    #[must_use]
    pub fn nktv2p(self) -> f64 {
        match self {
            UnitSystem::Lj => 1.0,
            UnitSystem::Metal => 1.602_176_634e6,
        }
    }

    /// The "mvv2e" factor converting mass*velocity^2 to energy units.
    ///
    /// In `lj` units this is 1. In `metal` units mass is g/mol and velocity
    /// angstrom/ps, so m*v^2 must be scaled to eV.
    #[must_use]
    pub fn mvv2e(self) -> f64 {
        match self {
            UnitSystem::Lj => 1.0,
            UnitSystem::Metal => 1.036_426_9e-4,
        }
    }

    /// Default timestep used by the paper's inputs (Table 2): 0.005 tau for
    /// LJ, 0.005 ps for metal.
    #[must_use]
    pub fn default_timestep(self) -> f64 {
        0.005
    }

    /// Human-readable time unit name (for reports).
    #[must_use]
    pub fn time_unit(self) -> &'static str {
        match self {
            UnitSystem::Lj => "tau",
            UnitSystem::Metal => "ps",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_units_are_reduced() {
        assert_eq!(UnitSystem::Lj.boltzmann(), 1.0);
        assert_eq!(UnitSystem::Lj.nktv2p(), 1.0);
        assert_eq!(UnitSystem::Lj.mvv2e(), 1.0);
    }

    #[test]
    fn metal_units_match_lammps_constants() {
        // Values as defined in LAMMPS update.cpp for metal units.
        assert!((UnitSystem::Metal.boltzmann() - 8.617333262e-5).abs() < 1e-12);
        assert!((UnitSystem::Metal.nktv2p() - 1.602176634e6).abs() < 1.0);
        assert!((UnitSystem::Metal.mvv2e() - 1.0364269e-4).abs() < 1e-9);
    }

    #[test]
    fn timestep_defaults() {
        assert_eq!(UnitSystem::Lj.default_timestep(), 0.005);
        assert_eq!(UnitSystem::Metal.default_timestep(), 0.005);
        assert_eq!(UnitSystem::Lj.time_unit(), "tau");
        assert_eq!(UnitSystem::Metal.time_unit(), "ps");
    }
}
