//! Property tests for the deterministic chunk-parallel kernels.
//!
//! The contract under test: the chunked neighbor build and the chunked
//! LJ/EAM passes are **bit-identical** to the serial seed kernels — same
//! force bits, same energy/virial bits — at any thread count, with or
//! without spatial sorting; and spatial sorting permutes atoms without
//! changing which pairs exist.

use proptest::prelude::*;
use tofumd_md::kernels::PairScratch;
use tofumd_md::neighbor::{sort_locals_by_bin, ListKind, NeighborList};
use tofumd_md::potential::{EamCu, LjCut, ManyBodyPotential, PairPotential};
use tofumd_md::Atoms;
use tofumd_threadpool::{ChunkExec, SpinPool};

const LO: [f64; 3] = [-3.0, -3.0, -3.0];
const HI: [f64; 3] = [13.0, 13.0, 13.0];

/// A cloud of local atoms in the core box plus "ghosts" scattered over the
/// extended region (their provenance doesn't matter to the kernels).
fn cloud(nlocal: usize, nghost: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<[f64; 3]>)> {
    let local = prop::collection::vec(prop::array::uniform3(0.05f64..9.95), nlocal..nlocal + 1);
    let ghost = prop::collection::vec(prop::array::uniform3(-2.5f64..12.5), nghost..nghost + 1);
    (local, ghost)
}

fn make_atoms(locals: &[[f64; 3]], ghosts: &[[f64; 3]], sorted: bool, cell: f64) -> Atoms {
    let mut atoms = Atoms::from_positions(locals.to_vec(), 1);
    if sorted {
        sort_locals_by_bin(&mut atoms, LO, HI, cell);
    }
    for (k, g) in ghosts.iter().enumerate() {
        atoms.push_ghost(*g, 1, 1000 + k as u64);
    }
    atoms
}

fn assert_forces_bitwise(a: &Atoms, b: &Atoms, label: &str) {
    assert_eq!(a.f.len(), b.f.len());
    for (i, (fa, fb)) in a.f.iter().zip(&b.f).enumerate() {
        for d in 0..3 {
            assert_eq!(
                fa[d].to_bits(),
                fb[d].to_bits(),
                "{label}: force mismatch atom {i} dim {d}: {} vs {}",
                fa[d],
                fb[d]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chunked LJ forces/energy/virial are bitwise equal to the serial
    /// kernel at 1, 2 and 8 threads, on sorted and unsorted input, and the
    /// chunked list build reproduces the serial build exactly.
    #[test]
    fn lj_chunked_is_bitwise_serial(atoms_in in cloud(180, 90), sorted in any::<bool>()) {
        let (locals, ghosts) = atoms_in;
        let lj = LjCut::lammps_bench();
        let cell = 2.5 + 0.3;
        let atoms0 = make_atoms(&locals, &ghosts, sorted, cell);
        let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 2.5, 0.3);

        let mut ref_atoms = atoms0.clone();
        ref_atoms.zero_forces();
        let ref_ev = lj.compute(&mut ref_atoms, &list);

        for threads in [1usize, 2, 8] {
            let pool;
            let exec = if threads == 1 {
                ChunkExec::Serial
            } else {
                pool = SpinPool::new(threads);
                ChunkExec::Pool(&pool)
            };
            // The chunked build must reproduce the serial list verbatim.
            let clist =
                NeighborList::build_chunked(&atoms0, LO, HI, ListKind::HalfNewton, 2.5, 0.3, &exec);
            prop_assert_eq!(clist.npairs(), list.npairs());
            for i in 0..atoms0.nlocal {
                prop_assert_eq!(clist.neighbors(i), list.neighbors(i), "row {} threads {}", i, threads);
            }

            let mut atoms = atoms0.clone();
            atoms.zero_forces();
            let mut scratch = PairScratch::new();
            let ev = lj.compute_chunked(&mut atoms, &list, &exec, &mut scratch);
            prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits(), "threads {}", threads);
            prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits(), "threads {}", threads);
            assert_forces_bitwise(&atoms, &ref_atoms, &format!("lj threads {threads} sorted {sorted}"));
        }
    }

    /// The three chunked EAM passes are bitwise equal to the serial ones
    /// at 1, 2 and 8 threads.
    #[test]
    fn eam_chunked_is_bitwise_serial(atoms_in in cloud(140, 70), sorted in any::<bool>()) {
        let (locals, ghosts) = atoms_in;
        let eam = EamCu::lammps_bench();
        let cell = 4.95 + 1.0;
        let atoms0 = make_atoms(&locals, &ghosts, sorted, cell);
        let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 4.95, 1.0);

        let mut ref_atoms = atoms0.clone();
        ref_atoms.zero_forces();
        let mut ref_rho = Vec::new();
        let mut ref_fp = Vec::new();
        eam.compute_rho(&ref_atoms, &list, &mut ref_rho);
        let ref_embed = eam.compute_embedding(&ref_atoms, &ref_rho, &mut ref_fp);
        let ref_ev = eam.compute_force(&mut ref_atoms, &list, &ref_fp);

        for threads in [1usize, 2, 8] {
            let pool;
            let exec = if threads == 1 {
                ChunkExec::Serial
            } else {
                pool = SpinPool::new(threads);
                ChunkExec::Pool(&pool)
            };
            let mut atoms = atoms0.clone();
            atoms.zero_forces();
            let mut scratch = PairScratch::new();
            let mut rho = Vec::new();
            let mut fp = Vec::new();
            eam.compute_rho_chunked(&atoms, &list, &mut rho, &exec, &mut scratch);
            prop_assert_eq!(rho.len(), ref_rho.len());
            for (i, (a, b)) in rho.iter().zip(&ref_rho).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "rho atom {} threads {}", i, threads);
            }
            let embed = eam.compute_embedding_chunked(&atoms, &rho, &mut fp, &exec);
            prop_assert_eq!(embed.to_bits(), ref_embed.to_bits(), "threads {}", threads);
            for (i, (a, b)) in fp.iter().zip(&ref_fp).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "fp atom {} threads {}", i, threads);
            }
            let ev = eam.compute_force_chunked(&mut atoms, &list, &fp, &exec, &mut scratch);
            prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits(), "threads {}", threads);
            prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits(), "threads {}", threads);
            assert_forces_bitwise(&atoms, &ref_atoms, &format!("eam threads {threads} sorted {sorted}"));
        }
    }

    /// Spatial sorting permutes atoms but never changes which pairs the
    /// half-one-sided list contains: same pair count, same (tag, tag)
    /// pair set.
    #[test]
    fn half_one_sided_pairs_invariant_under_sorting(atoms_in in cloud(160, 80)) {
        let (locals, ghosts) = atoms_in;
        let cell = 2.5 + 0.3;
        let unsorted = make_atoms(&locals, &ghosts, false, cell);
        let sorted = make_atoms(&locals, &ghosts, true, cell);

        let pair_tags = |atoms: &Atoms| -> std::collections::BTreeSet<(u64, u64)> {
            let list = NeighborList::build(atoms, LO, HI, ListKind::HalfOneSided, 2.5, 0.3);
            let mut set = std::collections::BTreeSet::new();
            for i in 0..atoms.nlocal {
                for &j in list.neighbors(i) {
                    let (a, b) = (atoms.tag[i], atoms.tag[j as usize]);
                    set.insert((a.min(b), a.max(b)));
                }
            }
            set
        };
        let pu = pair_tags(&unsorted);
        let ps = pair_tags(&sorted);
        prop_assert_eq!(pu.len(), ps.len(), "pair count changed by sorting");
        prop_assert_eq!(pu, ps, "pair set changed by sorting");
    }
}
