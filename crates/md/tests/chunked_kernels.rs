//! Property tests for the deterministic chunk-parallel kernels.
//!
//! The contract under test: the chunked neighbor build and the chunked
//! LJ/EAM passes are **bit-identical** to the serial seed kernels — same
//! force bits, same energy/virial bits — at any thread count, with or
//! without spatial sorting; and spatial sorting permutes atoms without
//! changing which pairs exist.

use proptest::prelude::*;
use tofumd_md::kernels::{KernelMode, PairScratch};
use tofumd_md::neighbor::{sort_locals_by_bin, ListKind, NeighborList};
use tofumd_md::potential::{EamCu, LjCut, ManyBodyPotential, PairPotential};
use tofumd_md::Atoms;
use tofumd_threadpool::{ChunkExec, SpinPool};

const LO: [f64; 3] = [-3.0, -3.0, -3.0];
const HI: [f64; 3] = [13.0, 13.0, 13.0];

/// A cloud of local atoms in the core box plus "ghosts" scattered over the
/// extended region (their provenance doesn't matter to the kernels).
fn cloud(nlocal: usize, nghost: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<[f64; 3]>)> {
    let local = prop::collection::vec(prop::array::uniform3(0.05f64..9.95), nlocal..nlocal + 1);
    let ghost = prop::collection::vec(prop::array::uniform3(-2.5f64..12.5), nghost..nghost + 1);
    (local, ghost)
}

/// A cloud whose local count sweeps every residue mod the lane width, so
/// the blocked kernels exercise every scalar-tail length 0..=7 (and the
/// random densities scatter per-row neighbor counts across all residues
/// as well).
fn lane_cloud(base: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<[f64; 3]>)> {
    (cloud(base + 7, 71), 0usize..8).prop_map(move |((mut l, mut g), res)| {
        l.truncate(base + res);
        g.truncate(64 + res);
        (l, g)
    })
}

fn make_atoms(locals: &[[f64; 3]], ghosts: &[[f64; 3]], sorted: bool, cell: f64) -> Atoms {
    let mut atoms = Atoms::from_positions(locals.to_vec(), 1);
    if sorted {
        sort_locals_by_bin(&mut atoms, LO, HI, cell);
    }
    for (k, g) in ghosts.iter().enumerate() {
        atoms.push_ghost(*g, 1, 1000 + k as u64);
    }
    atoms
}

fn assert_forces_bitwise(a: &Atoms, b: &Atoms, label: &str) {
    assert_eq!(a.f.len(), b.f.len());
    for (i, (fa, fb)) in a.f.iter().zip(&b.f).enumerate() {
        for d in 0..3 {
            assert_eq!(
                fa[d].to_bits(),
                fb[d].to_bits(),
                "{label}: force mismatch atom {i} dim {d}: {} vs {}",
                fa[d],
                fb[d]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chunked LJ forces/energy/virial are bitwise equal to the serial
    /// kernel at 1, 2 and 8 threads, on sorted and unsorted input, and the
    /// chunked list build reproduces the serial build exactly.
    #[test]
    fn lj_chunked_is_bitwise_serial(atoms_in in cloud(180, 90), sorted in any::<bool>()) {
        let (locals, ghosts) = atoms_in;
        let lj = LjCut::lammps_bench();
        let cell = 2.5 + 0.3;
        let atoms0 = make_atoms(&locals, &ghosts, sorted, cell);
        let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 2.5, 0.3);

        let mut ref_atoms = atoms0.clone();
        ref_atoms.zero_forces();
        let ref_ev = lj.compute(&mut ref_atoms, &list);

        for threads in [1usize, 2, 8] {
            let pool;
            let exec = if threads == 1 {
                ChunkExec::Serial
            } else {
                pool = SpinPool::new(threads);
                ChunkExec::Pool(&pool)
            };
            // The chunked build must reproduce the serial list verbatim.
            let clist =
                NeighborList::build_chunked(&atoms0, LO, HI, ListKind::HalfNewton, 2.5, 0.3, &exec);
            prop_assert_eq!(clist.npairs(), list.npairs());
            for i in 0..atoms0.nlocal {
                prop_assert_eq!(clist.neighbors(i), list.neighbors(i), "row {} threads {}", i, threads);
            }

            let mut atoms = atoms0.clone();
            atoms.zero_forces();
            let mut scratch = PairScratch::new();
            let ev = lj.compute_chunked(&mut atoms, &list, &exec, &mut scratch);
            prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits(), "threads {}", threads);
            prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits(), "threads {}", threads);
            assert_forces_bitwise(&atoms, &ref_atoms, &format!("lj threads {threads} sorted {sorted}"));
        }
    }

    /// The three chunked EAM passes are bitwise equal to the serial ones
    /// at 1, 2 and 8 threads.
    #[test]
    fn eam_chunked_is_bitwise_serial(atoms_in in cloud(140, 70), sorted in any::<bool>()) {
        let (locals, ghosts) = atoms_in;
        let eam = EamCu::lammps_bench();
        let cell = 4.95 + 1.0;
        let atoms0 = make_atoms(&locals, &ghosts, sorted, cell);
        let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 4.95, 1.0);

        let mut ref_atoms = atoms0.clone();
        ref_atoms.zero_forces();
        let mut ref_rho = Vec::new();
        let mut ref_fp = Vec::new();
        eam.compute_rho(&ref_atoms, &list, &mut ref_rho);
        let ref_embed = eam.compute_embedding(&ref_atoms, &ref_rho, &mut ref_fp);
        let ref_ev = eam.compute_force(&mut ref_atoms, &list, &ref_fp);

        for threads in [1usize, 2, 8] {
            let pool;
            let exec = if threads == 1 {
                ChunkExec::Serial
            } else {
                pool = SpinPool::new(threads);
                ChunkExec::Pool(&pool)
            };
            let mut atoms = atoms0.clone();
            atoms.zero_forces();
            let mut scratch = PairScratch::new();
            let mut rho = Vec::new();
            let mut fp = Vec::new();
            eam.compute_rho_chunked(&atoms, &list, &mut rho, &exec, &mut scratch);
            prop_assert_eq!(rho.len(), ref_rho.len());
            for (i, (a, b)) in rho.iter().zip(&ref_rho).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "rho atom {} threads {}", i, threads);
            }
            let embed = eam.compute_embedding_chunked(&atoms, &rho, &mut fp, &exec);
            prop_assert_eq!(embed.to_bits(), ref_embed.to_bits(), "threads {}", threads);
            for (i, (a, b)) in fp.iter().zip(&ref_fp).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "fp atom {} threads {}", i, threads);
            }
            let ev = eam.compute_force_chunked(&mut atoms, &list, &fp, &exec, &mut scratch);
            prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits(), "threads {}", threads);
            prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits(), "threads {}", threads);
            assert_forces_bitwise(&atoms, &ref_atoms, &format!("eam threads {threads} sorted {sorted}"));
        }
    }

    /// The lane-blocked LJ kernel is bitwise equal to the scalar one —
    /// energy, virial, and every force component — in the serial path and
    /// under the chunked executor at 1, 2 and 8 threads, across every
    /// scalar-tail residue.
    #[test]
    fn lj_blocked_is_bitwise_scalar(atoms_in in lane_cloud(152), sorted in any::<bool>()) {
        let (locals, ghosts) = atoms_in;
        let scalar = LjCut::lammps_bench();
        let blocked = LjCut::lammps_bench().with_kernel_mode(KernelMode::Blocked);
        let cell = 2.5 + 0.3;
        let atoms0 = make_atoms(&locals, &ghosts, sorted, cell);
        let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 2.5, 0.3);

        let mut ref_atoms = atoms0.clone();
        ref_atoms.zero_forces();
        let ref_ev = scalar.compute(&mut ref_atoms, &list);

        let mut serial = atoms0.clone();
        serial.zero_forces();
        let ev = blocked.compute(&mut serial, &list);
        prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits());
        prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits());
        assert_forces_bitwise(&serial, &ref_atoms, "lj blocked serial");

        for threads in [1usize, 2, 8] {
            let pool;
            let exec = if threads == 1 {
                ChunkExec::Serial
            } else {
                pool = SpinPool::new(threads);
                ChunkExec::Pool(&pool)
            };
            let mut atoms = atoms0.clone();
            atoms.zero_forces();
            let mut scratch = PairScratch::new();
            let ev = blocked.compute_chunked(&mut atoms, &list, &exec, &mut scratch);
            prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits(), "threads {}", threads);
            prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits(), "threads {}", threads);
            assert_forces_bitwise(&atoms, &ref_atoms, &format!("lj blocked threads {threads}"));
        }
    }

    /// All three lane-blocked EAM passes (rho, embedding, force) are
    /// bitwise equal to the scalar ones, serial and chunked at 1, 2 and 8
    /// threads, across every scalar-tail residue.
    #[test]
    fn eam_blocked_is_bitwise_scalar(atoms_in in lane_cloud(120), sorted in any::<bool>()) {
        let (locals, ghosts) = atoms_in;
        let scalar = EamCu::lammps_bench();
        let blocked = EamCu::lammps_bench().with_kernel_mode(KernelMode::Blocked);
        let cell = 4.95 + 1.0;
        let atoms0 = make_atoms(&locals, &ghosts, sorted, cell);
        let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 4.95, 1.0);

        let mut ref_atoms = atoms0.clone();
        ref_atoms.zero_forces();
        let mut ref_rho = Vec::new();
        let mut ref_fp = Vec::new();
        scalar.compute_rho(&ref_atoms, &list, &mut ref_rho);
        let ref_embed = scalar.compute_embedding(&ref_atoms, &ref_rho, &mut ref_fp);
        let ref_ev = scalar.compute_force(&mut ref_atoms, &list, &ref_fp);

        let mut serial = atoms0.clone();
        serial.zero_forces();
        let mut rho_s = Vec::new();
        let mut fp_s = Vec::new();
        blocked.compute_rho(&serial, &list, &mut rho_s);
        for (i, (a, b)) in rho_s.iter().zip(&ref_rho).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "serial rho atom {}", i);
        }
        let embed_s = blocked.compute_embedding(&serial, &rho_s, &mut fp_s);
        prop_assert_eq!(embed_s.to_bits(), ref_embed.to_bits());
        let ev_s = blocked.compute_force(&mut serial, &list, &fp_s);
        prop_assert_eq!(ev_s.energy.to_bits(), ref_ev.energy.to_bits());
        prop_assert_eq!(ev_s.virial.to_bits(), ref_ev.virial.to_bits());
        assert_forces_bitwise(&serial, &ref_atoms, "eam blocked serial");

        for threads in [1usize, 2, 8] {
            let pool;
            let exec = if threads == 1 {
                ChunkExec::Serial
            } else {
                pool = SpinPool::new(threads);
                ChunkExec::Pool(&pool)
            };
            let mut atoms = atoms0.clone();
            atoms.zero_forces();
            let mut scratch = PairScratch::new();
            let mut rho = Vec::new();
            let mut fp = Vec::new();
            blocked.compute_rho_chunked(&atoms, &list, &mut rho, &exec, &mut scratch);
            for (i, (a, b)) in rho.iter().zip(&ref_rho).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "rho atom {} threads {}", i, threads);
            }
            let embed = blocked.compute_embedding_chunked(&atoms, &rho, &mut fp, &exec);
            prop_assert_eq!(embed.to_bits(), ref_embed.to_bits(), "threads {}", threads);
            for (i, (a, b)) in fp.iter().zip(&ref_fp).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "fp atom {} threads {}", i, threads);
            }
            let ev = blocked.compute_force_chunked(&mut atoms, &list, &fp, &exec, &mut scratch);
            prop_assert_eq!(ev.energy.to_bits(), ref_ev.energy.to_bits(), "threads {}", threads);
            prop_assert_eq!(ev.virial.to_bits(), ref_ev.virial.to_bits(), "threads {}", threads);
            assert_forces_bitwise(&atoms, &ref_atoms, &format!("eam blocked threads {threads}"));
        }
    }

    /// Spatial sorting permutes atoms but never changes which pairs the
    /// half-one-sided list contains: same pair count, same (tag, tag)
    /// pair set.
    #[test]
    fn half_one_sided_pairs_invariant_under_sorting(atoms_in in cloud(160, 80)) {
        let (locals, ghosts) = atoms_in;
        let cell = 2.5 + 0.3;
        let unsorted = make_atoms(&locals, &ghosts, false, cell);
        let sorted = make_atoms(&locals, &ghosts, true, cell);

        let pair_tags = |atoms: &Atoms| -> std::collections::BTreeSet<(u64, u64)> {
            let list = NeighborList::build(atoms, LO, HI, ListKind::HalfOneSided, 2.5, 0.3);
            let mut set = std::collections::BTreeSet::new();
            for i in 0..atoms.nlocal {
                for &j in list.neighbors(i) {
                    let (a, b) = (atoms.tag[i], atoms.tag[j as usize]);
                    set.insert((a.min(b), a.max(b)));
                }
            }
            set
        };
        let pu = pair_tags(&unsorted);
        let ps = pair_tags(&sorted);
        prop_assert_eq!(pu.len(), ps.len(), "pair count changed by sorting");
        prop_assert_eq!(pu, ps, "pair set changed by sorting");
    }
}

/// Small-N thread scaling: with the work floor in [`ChunkExec`], an
/// 8-thread pool must not be meaningfully slower than serial at 2048
/// atoms (the floor routes tiny systems to the serial loop, so the pool
/// dispatch overhead never dominates). Order-of-magnitude pin only —
/// wall-clock, so the bound is deliberately loose.
#[test]
fn small_system_pool_not_slower_than_serial() {
    let mut locals = Vec::new();
    for ix in 0..16 {
        for iy in 0..16 {
            for iz in 0..8 {
                locals.push([
                    0.05 + 0.6 * f64::from(ix),
                    0.05 + 0.6 * f64::from(iy),
                    0.05 + 1.2 * f64::from(iz),
                ]);
            }
        }
    }
    assert_eq!(locals.len(), 2048);
    let atoms0 = Atoms::from_positions(locals, 1);
    let lj = LjCut::lammps_bench();
    let list = NeighborList::build(&atoms0, LO, HI, ListKind::HalfNewton, 2.5, 0.3);
    let pool = SpinPool::new(8);

    let time_with = |exec: &ChunkExec<'_>| {
        let mut atoms = atoms0.clone();
        let mut scratch = PairScratch::default();
        // Warm-up fills the scratch allocations.
        atoms.zero_forces();
        lj.compute_chunked(&mut atoms, &list, exec, &mut scratch);
        let reps = 10;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            atoms.zero_forces();
            lj.compute_chunked(&mut atoms, &list, exec, &mut scratch);
        }
        start.elapsed().as_secs_f64() / f64::from(reps)
    };
    let t1 = time_with(&ChunkExec::Serial);
    let t8 = time_with(&ChunkExec::Pool(&pool));
    assert!(
        t8 <= t1 * 10.0,
        "8-thread pool at 2048 atoms is >10x slower than serial: t8={t8:.3e}s t1={t1:.3e}s"
    );
}
