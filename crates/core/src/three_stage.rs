//! Shared bookkeeping for the default 3-stage exchange (§3.1, Fig. 4).
//!
//! LAMMPS's 6-way swap: sweep x, then y, then z; in each dimension send the
//! atoms (locals *and already-received ghosts*) lying within the ghost
//! cutoff of each face to the two face neighbors. The carry-forward makes
//! edge and corner ghosts travel in up to three legs — which is why each
//! stage must complete before the next starts, the serialization the p2p
//! pattern removes. Reverse communication runs the sweeps backwards.
//!
//! When the cutoff exceeds the sub-box edge (Fig. 15's 62/124-neighbor
//! regime), each dimension performs `shells` successive swaps: swap 0
//! ships the local band, and swap `s` *relays* the ghosts that arrived
//! from the opposite face in swap `s-1` — the receiver-side band test is
//! identical in every frame, so the relay rule is uniform.

use crate::engine::RankState;
use crate::plan::NeighborLink;
use crate::topo_map::RankMap;
use crate::wire;
use tofumd_md::domain::NeighborOffset;
use tofumd_md::region::Box3;

/// The six face links of a rank: `links[dim][0]` is the -dim neighbor,
/// `links[dim][1]` the +dim neighbor.
#[must_use]
pub fn staged_links(map: &RankMap, rank: usize, global: &Box3) -> [[NeighborLink; 2]; 3] {
    let c = map.rank_coord(rank);
    let rg = map.rank_grid;
    let l = global.lengths();
    let mk = |dim: usize, dir: i64| -> NeighborLink {
        let mut target = [i64::from(c[0]), i64::from(c[1]), i64::from(c[2])];
        target[dim] += dir;
        let nb = map.rank_at(target);
        let mut shift = [0.0; 3];
        let wrapped = target[dim].div_euclid(i64::from(rg[dim]));
        shift[dim] = -(wrapped as f64) * l[dim];
        let mut d = [0i8; 3];
        d[dim] = dir as i8;
        NeighborLink {
            offset: NeighborOffset { d },
            rank: nb,
            node: map.node_of(nb),
            hops: map.hops(rank, nb),
            shift,
        }
    };
    [
        [mk(0, -1), mk(0, 1)],
        [mk(1, -1), mk(1, 1)],
        [mk(2, -1), mk(2, 1)],
    ]
}

/// Map a flat border/forward round index to `(dim, swap)` for a given
/// swap count per dimension.
#[must_use]
pub fn round_to_sweep(round: usize, swaps: usize) -> (usize, usize) {
    (round / swaps, round % swaps)
}

/// Send lists and ghost layout for the staged pattern.
#[derive(Debug, Clone, Default)]
pub struct StagedGhosts {
    /// Swaps per dimension (the plan's shell count).
    swaps: usize,
    /// `send_lists[dim][swap][dir]`: atom indices (locals or earlier
    /// ghosts) sent toward that face in that swap.
    pub send_lists: Vec<Vec<[Vec<u32>; 2]>>,
    /// `ghost_seg[dim][swap][dir]`: (start, count) of ghosts received from
    /// that face in that swap.
    pub ghost_seg: Vec<Vec<[(usize, usize); 2]>>,
}

impl StagedGhosts {
    /// Reset for a new border pass with `swaps` swaps per dimension.
    pub fn reset(&mut self, st: &mut RankState, swaps: usize) {
        assert!(swaps >= 1);
        st.atoms.clear_ghosts();
        self.swaps = swaps;
        self.send_lists = vec![vec![[Vec::new(), Vec::new()]; swaps]; 3];
        self.ghost_seg = vec![vec![[(0, 0); 2]; swaps]; 3];
    }

    /// Swaps per dimension configured at the last reset.
    #[must_use]
    pub fn swaps(&self) -> usize {
        self.swaps
    }

    /// Build the send lists and payloads for `(dim, swap)`:
    /// `[toward -dim, toward +dim]`.
    ///
    /// Swap 0 scans everything present (locals plus all earlier-dimension
    /// ghosts); swap `s > 0` relays only the ghosts that arrived from the
    /// *opposite* face in swap `s - 1`. The band test (within `r_ghost` of
    /// the face) is the same in both cases.
    pub fn pack_border(
        &mut self,
        st: &RankState,
        links: &[[NeighborLink; 2]; 3],
        dim: usize,
        swap: usize,
    ) -> [Vec<f64>; 2] {
        let r = st.graph.r_ghost;
        let (lo, hi) = (st.graph.sub.lo[dim], st.graph.sub.hi[dim]);
        let mut payloads = [Vec::new(), Vec::new()];
        for dir in 0..2 {
            let candidates: Box<dyn Iterator<Item = usize>> = if swap == 0 {
                Box::new(0..st.atoms.ntotal())
            } else {
                // Relay ghosts that came from the opposite face last swap.
                let (start, count) = self.ghost_seg[dim][swap - 1][1 - dir];
                Box::new(start..start + count)
            };
            for i in candidates {
                let x = st.atoms.x[i];
                let wanted = if dir == 0 {
                    x[dim] < lo + r
                } else {
                    x[dim] >= hi - r
                };
                if !wanted {
                    continue;
                }
                let link = &links[dim][dir];
                self.send_lists[dim][swap][dir].push(i as u32);
                wire::push_border_record(
                    &mut payloads[dir],
                    st.atoms.tag[i],
                    st.atoms.typ[i],
                    [
                        x[0] + link.shift[0],
                        x[1] + link.shift[1],
                        x[2] + link.shift[2],
                    ],
                );
            }
        }
        payloads
    }

    /// Append the ghosts received during `(dim, swap)` (payloads ordered
    /// `[-dim, +dim]`).
    pub fn unpack_border(
        &mut self,
        st: &mut RankState,
        dim: usize,
        swap: usize,
        payloads: &[Vec<f64>; 2],
    ) {
        for (dir, payload) in payloads.iter().enumerate() {
            let start = st.atoms.ntotal();
            let records = wire::parse_border_records(payload);
            for (tag, typ, x) in &records {
                st.atoms.push_ghost(*x, *typ, *tag);
            }
            self.ghost_seg[dim][swap][dir] = (start, records.len());
        }
    }

    /// Pack current positions of send list `(dim, swap, dir)` (forward).
    #[must_use]
    pub fn pack_forward(
        &self,
        st: &RankState,
        links: &[[NeighborLink; 2]; 3],
        dim: usize,
        swap: usize,
        dir: usize,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.forward_f64s(dim, swap, dir));
        self.pack_forward_into(st, links, dim, swap, dir, &mut out);
        out
    }

    /// Stream the forward payload into any [`wire::F64Sink`] — zero-copy
    /// engines point this at a `CombinedWriter` over a registered region.
    pub fn pack_forward_into(
        &self,
        st: &RankState,
        links: &[[NeighborLink; 2]; 3],
        dim: usize,
        swap: usize,
        dir: usize,
        out: &mut impl wire::F64Sink,
    ) {
        let link = &links[dim][dir];
        for &i in &self.send_lists[dim][swap][dir] {
            let x = st.atoms.x[i as usize];
            out.put_f64(x[0] + link.shift[0]);
            out.put_f64(x[1] + link.shift[1]);
            out.put_f64(x[2] + link.shift[2]);
        }
    }

    /// Payload size (f64s) of `pack_forward` for `(dim, swap, dir)`.
    #[must_use]
    pub fn forward_f64s(&self, dim: usize, swap: usize, dir: usize) -> usize {
        self.send_lists[dim][swap][dir].len() * 3
    }

    /// Write received positions into ghost segment `(dim, swap, dir)`.
    pub fn unpack_forward(
        &self,
        st: &mut RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        values: &[f64],
    ) {
        let (start, count) = self.ghost_seg[dim][swap][dir];
        assert_eq!(values.len(), count * 3, "forward payload size mismatch");
        for (g, xyz) in values.chunks_exact(3).enumerate() {
            st.atoms.x[start + g] = [xyz[0], xyz[1], xyz[2]];
        }
    }

    /// Pack ghost forces of segment `(dim, swap, dir)` (reverse stage —
    /// runs in the opposite sweep order).
    #[must_use]
    pub fn pack_reverse(&self, st: &RankState, dim: usize, swap: usize, dir: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.reverse_f64s(dim, swap, dir));
        self.pack_reverse_into(st, dim, swap, dir, &mut out);
        out
    }

    /// Sink-generic form of [`StagedGhosts::pack_reverse`].
    pub fn pack_reverse_into(
        &self,
        st: &RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        out: &mut impl wire::F64Sink,
    ) {
        let (start, count) = self.ghost_seg[dim][swap][dir];
        for g in 0..count {
            out.put_f64s(&st.atoms.f[start + g]);
        }
    }

    /// Payload size (f64s) of `pack_reverse` for `(dim, swap, dir)`.
    #[must_use]
    pub fn reverse_f64s(&self, dim: usize, swap: usize, dir: usize) -> usize {
        self.ghost_seg[dim][swap][dir].1 * 3
    }

    /// Accumulate received forces into send list `(dim, swap, dir)` —
    /// entries may themselves be ghosts, whose accumulated force continues
    /// homeward in an earlier reverse round.
    pub fn unpack_reverse(
        &self,
        st: &mut RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        values: &[f64],
    ) {
        let list = &self.send_lists[dim][swap][dir];
        assert_eq!(
            values.len(),
            list.len() * 3,
            "reverse payload size mismatch"
        );
        for (&i, fxyz) in list.iter().zip(values.chunks_exact(3)) {
            let f = &mut st.atoms.f[i as usize];
            f[0] += fxyz[0];
            f[1] += fxyz[1];
            f[2] += fxyz[2];
        }
    }

    /// Pack local scalars of send list `(dim, swap, dir)` (EAM forward).
    #[must_use]
    pub fn pack_forward_scalar(
        &self,
        st: &RankState,
        dim: usize,
        swap: usize,
        dir: usize,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.send_lists[dim][swap][dir].len());
        self.pack_forward_scalar_into(st, dim, swap, dir, &mut out);
        out
    }

    /// Sink-generic form of [`StagedGhosts::pack_forward_scalar`].
    pub fn pack_forward_scalar_into(
        &self,
        st: &RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        out: &mut impl wire::F64Sink,
    ) {
        for &i in &self.send_lists[dim][swap][dir] {
            out.put_f64(st.scalar[i as usize]);
        }
    }

    /// Write received scalars into ghost segment `(dim, swap, dir)`.
    pub fn unpack_forward_scalar(
        &self,
        st: &mut RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        values: &[f64],
    ) {
        let (start, count) = self.ghost_seg[dim][swap][dir];
        assert_eq!(values.len(), count, "scalar payload size mismatch");
        st.scalar[start..start + count].copy_from_slice(values);
    }

    /// Pack ghost scalars of segment `(dim, swap, dir)` (EAM reverse).
    #[must_use]
    pub fn pack_reverse_scalar(
        &self,
        st: &RankState,
        dim: usize,
        swap: usize,
        dir: usize,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ghost_seg[dim][swap][dir].1);
        self.pack_reverse_scalar_into(st, dim, swap, dir, &mut out);
        out
    }

    /// Sink-generic form of [`StagedGhosts::pack_reverse_scalar`].
    pub fn pack_reverse_scalar_into(
        &self,
        st: &RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        out: &mut impl wire::F64Sink,
    ) {
        let (start, count) = self.ghost_seg[dim][swap][dir];
        out.put_f64s(&st.scalar[start..start + count]);
    }

    /// Payload size (f64s) of the scalar ops for `(dim, swap, dir)`: the
    /// send list forward, the ghost segment on the reverse side.
    #[must_use]
    pub fn scalar_f64s(&self, dim: usize, swap: usize, dir: usize, reverse: bool) -> usize {
        if reverse {
            self.ghost_seg[dim][swap][dir].1
        } else {
            self.send_lists[dim][swap][dir].len()
        }
    }

    /// Accumulate received scalars into send list `(dim, swap, dir)`.
    pub fn unpack_reverse_scalar(
        &self,
        st: &mut RankState,
        dim: usize,
        swap: usize,
        dir: usize,
        values: &[f64],
    ) {
        let list = &self.send_lists[dim][swap][dir];
        assert_eq!(values.len(), list.len(), "scalar payload size mismatch");
        for (&i, v) in list.iter().zip(values) {
            st.scalar[i as usize] += v;
        }
    }

    /// Total records sent across all lists (Table 1 volume observable).
    #[must_use]
    pub fn total_send_atoms(&self) -> usize {
        self.send_lists
            .iter()
            .flatten()
            .map(|pair| pair[0].len() + pair[1].len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CommPlan, PlanConfig};
    use crate::topo_map::Placement;
    use tofumd_md::atom::Atoms;
    use tofumd_tofu::CellGrid;

    fn setup(pos: Vec<[f64; 3]>) -> (RankState, [[NeighborLink; 2]; 3]) {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        let rg = map.rank_grid;
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        let links = staged_links(&map, 0, &global);
        let plan = CommPlan::build(0, &map, &global, 2.0, PlanConfig::NEWTON);
        (
            RankState::new(
                Atoms::from_positions(pos, 1),
                crate::sf::CommGraph::from_grid(plan),
            ),
            links,
        )
    }

    #[test]
    fn face_links_point_at_grid_neighbors() {
        let (st, links) = setup(vec![[5.0; 3]]);
        let _ = st;
        assert_eq!(links[0][1].offset.d, [1, 0, 0]);
        assert_eq!(links[2][0].offset.d, [0, 0, -1]);
        assert!(links[0][0].shift[0] > 0.0, "wrap at the origin");
        assert_eq!(links[0][1].shift, [0.0; 3]);
    }

    #[test]
    fn border_selects_slabs_only() {
        let (mut st, links) = setup(vec![[0.5, 5.0, 5.0], [5.0, 5.0, 5.0], [9.5, 5.0, 5.0]]);
        let mut g = StagedGhosts::default();
        g.reset(&mut st, 1);
        let p = g.pack_border(&st, &links, 0, 0);
        assert_eq!(p[0].len(), wire::BORDER_RECORD_F64S);
        assert_eq!(p[1].len(), wire::BORDER_RECORD_F64S);
        assert_eq!(g.send_lists[0][0][0], vec![0]);
        assert_eq!(g.send_lists[0][0][1], vec![2]);
    }

    #[test]
    fn carry_forward_ships_prior_dim_ghosts() {
        let (mut st, links) = setup(vec![[5.0, 5.0, 5.0]]);
        let mut g = StagedGhosts::default();
        g.reset(&mut st, 1);
        let mut ghost_payload = Vec::new();
        wire::push_border_record(&mut ghost_payload, 99, 1, [-0.5, 0.3, 5.0]);
        g.unpack_border(&mut st, 0, 0, &[ghost_payload, Vec::new()]);
        assert_eq!(st.atoms.nghost(), 1);
        let p = g.pack_border(&st, &links, 1, 0);
        assert_eq!(g.send_lists[1][0][0], vec![st.atoms.nlocal as u32]);
        let recs = wire::parse_border_records(&p[0]);
        assert_eq!(recs[0].0, 99, "carried ghost keeps its original tag");
    }

    #[test]
    fn multi_swap_relays_opposite_face_ghosts() {
        // Two swaps: a ghost received from the -x side in swap 0 must be
        // relayed toward +x in swap 1 (and only there).
        let (mut st, links) = setup(vec![[5.0, 5.0, 5.0]]);
        let mut g = StagedGhosts::default();
        g.reset(&mut st, 2);
        // Swap 0: receive one ghost from the -x neighbor near my high face
        // band (its shifted position sits below lo, within r of nothing
        // upward... place it so the +x band test passes: r = 2.0, so use
        // x in [hi - r, ...): the relay band in MY frame).
        let mut from_minus = Vec::new();
        wire::push_border_record(&mut from_minus, 77, 1, [8.5, 5.0, 5.0]);
        g.unpack_border(&mut st, 0, 0, &[from_minus, Vec::new()]);
        let p = g.pack_border(&st, &links, 0, 1);
        // Relayed upward (dir 1), not downward.
        assert_eq!(g.send_lists[0][1][1], vec![st.atoms.nlocal as u32]);
        assert!(g.send_lists[0][1][0].is_empty());
        assert_eq!(wire::parse_border_records(&p[1])[0].0, 77);
        // Locals are NOT rescanned in swap 1 (they shipped in swap 0).
        assert_eq!(p[1].len(), wire::BORDER_RECORD_F64S);
    }

    #[test]
    fn forward_and_reverse_use_the_same_lists() {
        let (mut st, links) = setup(vec![[0.5, 5.0, 5.0]]);
        let mut g = StagedGhosts::default();
        g.reset(&mut st, 1);
        let _ = g.pack_border(&st, &links, 0, 0);
        let fwd = g.pack_forward(&st, &links, 0, 0, 0);
        assert_eq!(fwd.len(), 3);
        assert!(fwd[0] > 10.0, "wrapped shift applied");
        st.atoms.f[0] = [0.0; 3];
        g.unpack_reverse(&mut st, 0, 0, 0, &[2.0, 0.0, -1.0]);
        assert_eq!(st.atoms.f[0], [2.0, 0.0, -1.0]);
    }

    #[test]
    fn full_shell_volume_vs_p2p_half() {
        let mut pos = Vec::new();
        let n = 20;
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    pos.push([
                        (ix as f64 + 0.5) * 0.5,
                        (iy as f64 + 0.5) * 0.5,
                        (iz as f64 + 0.5) * 0.5,
                    ]);
                }
            }
        }
        let natoms = pos.len() as f64;
        let (mut st, links) = setup(pos);
        let mut g = StagedGhosts::default();
        g.reset(&mut st, 1);
        for dim in 0..3 {
            let p = g.pack_border(&st, &links, dim, 0);
            g.unpack_border(&mut st, dim, 0, &p);
        }
        let a = 10.0f64;
        let r = 2.0f64;
        let density = natoms / a.powi(3);
        let expect = density * (6.0 * a * a * r + 12.0 * a * r * r + 8.0 * r * r * r);
        let got = g.total_send_atoms() as f64;
        let rel = (got - expect).abs() / expect;
        assert!(rel < 0.15, "staged volume {got} vs estimate {expect}");
    }
}
