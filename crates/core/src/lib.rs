//! # tofumd-core — the paper's contribution: optimized ghost communication
//!
//! Implements every communication design of *"Enhance the Strong Scaling of
//! LAMMPS on Fugaku"* (SC '23) over the simulated TofuD fabric:
//!
//! * the baseline **3-stage** exchange with carry-forward and its uTofu
//!   port ([`three_stage`], [`MpiThreeStage`], [`UtofuThreeStage`]),
//! * the **peer-to-peer** pattern with Newton-halved 13-neighbor exchange
//!   and its 26/62/124-neighbor generalizations ([`p2p`], [`MpiP2p`],
//!   [`UtofuP2p`]),
//! * **coarse-grained** (4 ranks x 4 TNIs) and **fine-grained** (6 comm
//!   threads x 6 TNIs, LPT load balancing) parallel communication
//!   ([`UtofuConfig`], [`fine`]),
//! * **pre-registered addresses**: max-size one-time registration, direct
//!   forward writes into the remote position array, ghost-offset
//!   piggybacking and 4 round-robin receive buffers ([`UtofuConfig::pool6`]),
//! * the auxiliary optimizations: **message combine** ([`wire`]), **border
//!   bins** ([`border_bin`]) and the **topology map** ([`topo_map`]).
//!
//! Engines implement [`GhostEngine`] and are driven in bulk-synchronous
//! lockstep by `tofumd-runtime`.
//!
//! # Example: Table-1 geometry from a concrete plan
//!
//! ```
//! use tofumd_core::plan::{CommPlan, PlanConfig};
//! use tofumd_core::topo_map::{Placement, RankMap};
//! use tofumd_md::region::Box3;
//! use tofumd_tofu::CellGrid;
//!
//! let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap(); // 768 nodes
//! let map = RankMap::new(grid, Placement::TopoAware);
//! let rg = map.rank_grid;
//! let global = Box3::from_lengths([
//!     10.0 * rg[0] as f64,
//!     10.0 * rg[1] as f64,
//!     10.0 * rg[2] as f64,
//! ]);
//! let plan = CommPlan::build(0, &map, &global, 2.8, PlanConfig::NEWTON);
//! // Newton's 3rd law: 13 neighbors, half the full shell.
//! assert_eq!(plan.neighbor_count(), 13);
//! // Face neighbors are one hop away under the topology mapping.
//! assert!(plan.recv_from.iter().all(|l| l.hops <= 3));
//! ```

#![warn(missing_docs)]
// Panicking escape hatches are reserved for tests; library paths must
// propagate errors through the typed-error plumbing instead.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// Dimension loops (`for d in 0..3`) index by physical dimension on fixed
// [f64; 3] vectors; the index is the semantics, so the iterator rewrite the
// lint suggests would be less clear.
#![allow(clippy::needless_range_loop)]

pub mod border_bin;
pub mod engine;
pub mod fine;
pub mod mpi_engine;
pub mod p2p;
pub mod plan;
pub mod sf;
pub mod three_stage;
pub mod topo_map;
pub mod utofu_engine;
pub mod wire;

pub use border_bin::BorderBins;
pub use engine::{CommStats, GhostEngine, Op, RankState};
pub use mpi_engine::{MpiP2p, MpiThreeStage};
pub use plan::{CommPlan, NeighborLink, PlanConfig};
pub use sf::{CommGraph, GraphEdge, MigratePeer, SendSelector};
pub use topo_map::{Placement, RankMap, RANKS_PER_NODE_SPLIT};
pub use utofu_engine::{AddressBook, UtofuConfig, UtofuP2p, UtofuThreeStage};
