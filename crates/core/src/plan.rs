//! Per-rank communication plans: who talks to whom, over how many hops,
//! with what expected message sizes (the concrete counterpart of Table 1).

use crate::topo_map::RankMap;
use serde::{Deserialize, Serialize};
use tofumd_md::domain::{neighbor_offsets, NeighborOffset};
use tofumd_md::region::Box3;

/// Which ghost pattern a plan serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Neighbor shells: 1 for the common regime, 2 for the 62/124-neighbor
    /// extended experiment (Fig. 15).
    pub shells: usize,
    /// Newton's 3rd law halving: receive ghosts from the upper half only.
    pub half: bool,
}

impl PlanConfig {
    /// The paper's main configuration: 1 shell, Newton on (13 neighbors).
    pub const NEWTON: PlanConfig = PlanConfig {
        shells: 1,
        half: true,
    };
    /// Full-neighbor-list potentials: 1 shell, 26 neighbors.
    pub const FULL: PlanConfig = PlanConfig {
        shells: 1,
        half: false,
    };
}

/// One directed neighbor relationship of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborLink {
    /// Grid offset from me to the neighbor.
    pub offset: NeighborOffset,
    /// The neighbor's rank id.
    pub rank: usize,
    /// The neighbor's node id.
    pub node: usize,
    /// Network hops to the neighbor.
    pub hops: u32,
    /// Periodic shift to add to *my* atom positions when they are sent to
    /// this neighbor (non-zero only across global box boundaries).
    pub shift: [f64; 3],
}

/// A rank's ghost-communication plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommPlan {
    /// This rank.
    pub me: usize,
    /// This rank's sub-box.
    pub sub: Box3,
    /// Ghost cutoff (force cutoff + skin).
    pub r_ghost: f64,
    /// Neighbors I receive ghost atoms from (and send forces back to).
    /// Upper half under Newton; all neighbors otherwise.
    pub recv_from: Vec<NeighborLink>,
    /// Neighbors I send my border atoms to (and receive forces from).
    /// Exactly the opposite offsets of `recv_from`.
    pub send_to: Vec<NeighborLink>,
    /// The six face neighbors (`face_links[dim][0]` = -dim,
    /// `face_links[dim][1]` = +dim): the exchange (migration) stage sweeps
    /// these regardless of the ghost pattern, as LAMMPS does.
    pub face_links: [[NeighborLink; 2]; 3],
    config: PlanConfig,
}

impl CommPlan {
    /// Build the plan for `rank` given the machine mapping, the global box
    /// and the ghost cutoff.
    #[must_use]
    pub fn build(
        rank: usize,
        map: &RankMap,
        global: &Box3,
        r_ghost: f64,
        config: PlanConfig,
    ) -> Self {
        let rg = map.rank_grid;
        let c = map.rank_coord(rank);
        let sub = sub_box_of(global, rg, c);
        let recv_offsets = neighbor_offsets(config.shells, config.half);
        let link = |off: NeighborOffset| -> NeighborLink {
            let target = [
                i64::from(c[0]) + i64::from(off.d[0]),
                i64::from(c[1]) + i64::from(off.d[1]),
                i64::from(c[2]) + i64::from(off.d[2]),
            ];
            let nb = map.rank_at(target);
            // Shift my atoms so they appear adjacent to the neighbor's box
            // when the link wraps the global boundary.
            let l = global.lengths();
            let mut shift = [0.0; 3];
            for d in 0..3 {
                let wrapped = target[d].div_euclid(i64::from(rg[d]));
                shift[d] = -(wrapped as f64) * l[d];
            }
            NeighborLink {
                offset: off,
                rank: nb,
                node: map.node_of(nb),
                hops: map.hops(rank, nb),
                shift,
            }
        };
        // I receive ghosts from `recv_offsets`; I send my atoms to the
        // *opposite* offsets (for whom I sit in their recv set). The shift
        // attached to a send link applies to my outgoing atoms.
        let recv_from: Vec<NeighborLink> = recv_offsets.iter().map(|&o| link(o)).collect();
        let send_to: Vec<NeighborLink> = recv_offsets.iter().map(|&o| link(o.opposite())).collect();
        let face = |d: usize, dir: i8| -> NeighborLink {
            let mut off = [0i8; 3];
            off[d] = dir;
            link(NeighborOffset { d: off })
        };
        let face_links = [
            [face(0, -1), face(0, 1)],
            [face(1, -1), face(1, 1)],
            [face(2, -1), face(2, 1)],
        ];
        CommPlan {
            me: rank,
            sub,
            r_ghost,
            recv_from,
            send_to,
            face_links,
            config,
        }
    }

    /// The plan's configuration.
    #[must_use]
    pub fn config(&self) -> PlanConfig {
        self.config
    }

    /// Neighbor count per direction (13, 26, 62 or 124).
    #[must_use]
    pub fn neighbor_count(&self) -> usize {
        self.recv_from.len()
    }

    /// Expected ghost-slab volume sent to a neighbor at `offset`
    /// (Table 1's msg_size column, generalized to anisotropic sub-boxes
    /// and multiple shells).
    #[must_use]
    pub fn slab_volume(&self, offset: NeighborOffset) -> f64 {
        let a = self.sub.lengths();
        let r = self.r_ghost;
        let mut v = 1.0;
        for d in 0..3 {
            let extent = match offset.d[d].unsigned_abs() {
                0 => a[d],
                1 => r.min(a[d]),
                s => {
                    // Shell s covers the band ((s-1)a, min(r, sa)] of ghost
                    // depth beyond s-1 whole sub-boxes.

                    (r - (f64::from(s) - 1.0) * a[d]).clamp(0.0, a[d])
                }
            };
            v *= extent;
        }
        v
    }

    /// Estimated *maximum* atoms in the slab toward `offset` at the given
    /// number density (used by §3.4 to pre-size registered buffers: the
    /// "theoretical upper limit of atoms to be exchanged").
    #[must_use]
    pub fn max_atoms_estimate(&self, offset: NeighborOffset, density: f64) -> usize {
        // 2x headroom over the mean absorbs density fluctuations plus the
        // skin-induced overcount; +8 covers tiny slabs.
        (2.0 * density * self.slab_volume(offset)).ceil() as usize + 8
    }

    /// Total expected ghost atoms received per exchange (the plan-level
    /// counterpart of Table 1's `total_atom`).
    #[must_use]
    pub fn total_ghost_estimate(&self, density: f64) -> f64 {
        self.recv_from
            .iter()
            .map(|l| density * self.slab_volume(l.offset))
            .sum()
    }
}

/// Sub-box of the rank at grid coordinate `c` in an `rg` decomposition.
#[must_use]
pub fn sub_box_of(global: &Box3, rg: [u32; 3], c: [u32; 3]) -> Box3 {
    let mut frac_lo = [0.0; 3];
    let mut frac_hi = [0.0; 3];
    for d in 0..3 {
        frac_lo[d] = f64::from(c[d]) / f64::from(rg[d]);
        frac_hi[d] = f64::from(c[d] + 1) / f64::from(rg[d]);
    }
    global.fractional_sub_box(frac_lo, frac_hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo_map::Placement;
    use tofumd_tofu::CellGrid;

    fn setup() -> (RankMap, Box3) {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        // Global box scaled so each sub-box is 10 x 10 x 10.
        let rg = map.rank_grid;
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        (map, global)
    }

    /// The four paper instances of the one graph family: Newton-halved
    /// and full neighbor sets at one and two halo shells.
    const INSTANCES: [(PlanConfig, usize); 4] = [
        (PlanConfig::NEWTON, 13),
        (
            PlanConfig {
                shells: 1,
                half: false,
            },
            26,
        ),
        (
            PlanConfig {
                shells: 2,
                half: true,
            },
            62,
        ),
        (
            PlanConfig {
                shells: 2,
                half: false,
            },
            124,
        ),
    ];

    #[test]
    fn plan_instances_have_paper_neighbor_counts() {
        let (map, global) = setup();
        for (cfg, expect) in INSTANCES {
            let p = CommPlan::build(0, &map, &global, 2.8, cfg);
            assert_eq!(p.neighbor_count(), expect, "{cfg:?}");
            assert_eq!(p.send_to.len(), expect, "{cfg:?}");
        }
    }

    #[test]
    fn send_and_recv_sets_are_opposite() {
        let (map, global) = setup();
        for (cfg, _) in INSTANCES {
            let p = CommPlan::build(5, &map, &global, 2.8, cfg);
            for (r, s) in p.recv_from.iter().zip(&p.send_to) {
                assert_eq!(r.offset.opposite(), s.offset, "{cfg:?}");
            }
        }
    }

    #[test]
    fn plan_is_globally_consistent() {
        // If rank A receives from B at offset o, then B must send to the
        // rank at offset -o from itself — which is A.
        let (map, global) = setup();
        let a = 123;
        for (cfg, _) in INSTANCES {
            let pa = CommPlan::build(a, &map, &global, 2.8, cfg);
            for l in &pa.recv_from {
                let pb = CommPlan::build(l.rank, &map, &global, 2.8, cfg);
                assert!(
                    pb.send_to.iter().any(|s| s.rank == a),
                    "{cfg:?}: neighbor {} does not send to {a}",
                    l.rank
                );
            }
        }
    }

    #[test]
    fn shifts_are_zero_in_the_interior() {
        let (map, global) = setup();
        // Pick an interior rank: grid coord (4, 12, 8).
        let r = map.rank_at([4, 12, 8]);
        let p = CommPlan::build(r, &map, &global, 2.8, PlanConfig::NEWTON);
        for l in p.recv_from.iter().chain(&p.send_to) {
            assert_eq!(l.shift, [0.0; 3], "interior rank must not shift");
        }
    }

    #[test]
    fn shifts_wrap_at_the_boundary() {
        let (map, global) = setup();
        let r = map.rank_at([0, 0, 0]); // corner rank
        let p = CommPlan::build(r, &map, &global, 2.8, PlanConfig::NEWTON);
        let l = global.lengths();
        // Sending to the (-1,-1,-1) neighbor wraps all three dims:
        // my atoms must shift by +L to appear below that neighbor... i.e.
        // by -(-1)*L = +L per dim.
        let s = p
            .send_to
            .iter()
            .find(|s| s.offset.d == [-1, -1, -1])
            .expect("corner send link");
        assert_eq!(s.shift, [l[0], l[1], l[2]]);
    }

    #[test]
    fn table1_volume_shapes() {
        let (map, global) = setup();
        let p = CommPlan::build(0, &map, &global, 2.0, PlanConfig::NEWTON);
        let a = 10.0;
        let r = 2.0;
        // Face: a^2 r, edge: a r^2, corner: r^3 (Table 1 p2p rows).
        let face = p.slab_volume(NeighborOffset { d: [1, 0, 0] });
        let edge = p.slab_volume(NeighborOffset { d: [1, 1, 0] });
        let corner = p.slab_volume(NeighborOffset { d: [1, 1, 1] });
        assert!((face - a * a * r).abs() < 1e-9);
        assert!((edge - a * r * r).abs() < 1e-9);
        assert!((corner - r * r * r).abs() < 1e-9);
        // Total over 13 half neighbors = (6 a^2 r + 12 a r^2 + 8 r^3)/2.
        let total: f64 = p
            .recv_from
            .iter()
            .map(|link| p.slab_volume(link.offset))
            .sum();
        let expect = 0.5 * (6.0 * a * a * r + 12.0 * a * r * r + 8.0 * r * r * r);
        assert!((total - expect).abs() < 1e-9, "{total} vs {expect}");
    }

    #[test]
    fn second_shell_volume_vanishes_when_cutoff_small() {
        let (map, global) = setup();
        let p = CommPlan::build(0, &map, &global, 2.0, PlanConfig::NEWTON);
        // r = 2 < a = 10: second-shell slabs are empty.
        let v = p.slab_volume(NeighborOffset { d: [2, 0, 0] });
        assert_eq!(v, 0.0);
    }

    #[test]
    fn buffer_estimates_have_headroom() {
        let (map, global) = setup();
        let p = CommPlan::build(0, &map, &global, 2.0, PlanConfig::NEWTON);
        let density = 0.8442;
        let face = NeighborOffset { d: [1, 0, 0] };
        let est = p.max_atoms_estimate(face, density);
        let mean = density * p.slab_volume(face);
        assert!(est as f64 >= 1.5 * mean);
    }
}
