//! Shared bookkeeping for the peer-to-peer ghost pattern (§3.1, Fig. 5).
//!
//! Pure pack/unpack and layout logic, transport-agnostic: the MPI and
//! uTofu engines both drive a [`P2pGhosts`] and differ only in how the
//! payload bytes travel and what the transfer costs.
//!
//! Index discipline: `CommGraph::recv[i]` and `CommGraph::send[i]` mirror
//! each other, and every edge carries the `peer_index` of its mirror on
//! the other side — messages are tagged with the receiver's edge index,
//! which also disambiguates small periodic grids (and irregular graphs)
//! where one rank is a neighbor along several edges.

use crate::engine::RankState;
use crate::sf::SendSelector;
use crate::wire;

/// Send lists and ghost layout for the p2p pattern.
#[derive(Debug, Clone, Default)]
pub struct P2pGhosts {
    /// Per send edge: indices of my local atoms the neighbor needs.
    pub send_lists: Vec<Vec<u32>>,
    /// Per recv edge: (first ghost index, count) in the atom array.
    pub ghost_seg: Vec<(usize, usize)>,
}

impl P2pGhosts {
    /// Build send lists from the graph's selector and produce the border
    /// payloads (tag + shifted position per atom), one per send edge.
    pub fn pack_border(&mut self, st: &RankState, sel: &SendSelector) -> Vec<Vec<f64>> {
        let n_links = st.graph.send.len();
        self.send_lists = vec![Vec::new(); n_links];
        let mut payloads = vec![Vec::new(); n_links];
        for i in 0..st.atoms.nlocal {
            let x = st.atoms.x[i];
            sel.for_each_target(&x, |k| {
                let k = k as usize;
                let link = &st.graph.send[k];
                self.send_lists[k].push(i as u32);
                wire::push_border_record(
                    &mut payloads[k],
                    st.atoms.tag[i],
                    st.atoms.typ[i],
                    [
                        x[0] + link.shift[0],
                        x[1] + link.shift[1],
                        x[2] + link.shift[2],
                    ],
                );
            });
        }
        payloads
    }

    /// Append received border records as ghosts. `per_link[k]` is the
    /// payload from `recv[k]` (empty if that neighbor sent nothing).
    /// Ghosts are laid out in link order — deterministic across runs.
    pub fn unpack_border(&mut self, st: &mut RankState, per_link: &[Vec<f64>]) {
        st.atoms.clear_ghosts();
        self.ghost_seg = Vec::with_capacity(per_link.len());
        for payload in per_link {
            let start = st.atoms.ntotal();
            let records = wire::parse_border_records(payload);
            for (tag, typ, x) in &records {
                st.atoms.push_ghost(*x, *typ, *tag);
            }
            self.ghost_seg.push((start, records.len()));
        }
    }

    /// Pack current positions of send list `k` (forward stage).
    #[must_use]
    pub fn pack_forward(&self, st: &RankState, k: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.forward_f64s(k));
        self.pack_forward_into(st, k, &mut out);
        out
    }

    /// Stream send list `k`'s positions into any [`wire::F64Sink`] — the
    /// zero-copy path points this at a `CombinedWriter` over a registered
    /// send region; the staged path at a `Vec`. Same values, same order.
    pub fn pack_forward_into(&self, st: &RankState, k: usize, out: &mut impl wire::F64Sink) {
        let link = &st.graph.send[k];
        for &i in &self.send_lists[k] {
            let x = st.atoms.x[i as usize];
            out.put_f64(x[0] + link.shift[0]);
            out.put_f64(x[1] + link.shift[1]);
            out.put_f64(x[2] + link.shift[2]);
        }
    }

    /// Payload size (f64s) of `pack_forward` for send edge `k`.
    #[must_use]
    pub fn forward_f64s(&self, k: usize) -> usize {
        self.send_lists[k].len() * 3
    }

    /// Write received positions into ghost segment `k`.
    pub fn unpack_forward(&self, st: &mut RankState, k: usize, values: &[f64]) {
        let (start, count) = self.ghost_seg[k];
        assert_eq!(values.len(), count * 3, "forward payload size mismatch");
        for (g, xyz) in values.chunks_exact(3).enumerate() {
            st.atoms.x[start + g] = [xyz[0], xyz[1], xyz[2]];
        }
    }

    /// Pack ghost forces of segment `k` (reverse stage: back to the owner).
    #[must_use]
    pub fn pack_reverse(&self, st: &RankState, k: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.reverse_f64s(k));
        self.pack_reverse_into(st, k, &mut out);
        out
    }

    /// Sink-generic form of [`P2pGhosts::pack_reverse`].
    pub fn pack_reverse_into(&self, st: &RankState, k: usize, out: &mut impl wire::F64Sink) {
        let (start, count) = self.ghost_seg[k];
        for g in 0..count {
            out.put_f64s(&st.atoms.f[start + g]);
        }
    }

    /// Payload size (f64s) of `pack_reverse` for recv edge `k`.
    #[must_use]
    pub fn reverse_f64s(&self, k: usize) -> usize {
        self.ghost_seg[k].1 * 3
    }

    /// Accumulate received forces into the atoms of send list `k`.
    pub fn unpack_reverse(&self, st: &mut RankState, k: usize, values: &[f64]) {
        let list = &self.send_lists[k];
        assert_eq!(
            values.len(),
            list.len() * 3,
            "reverse payload size mismatch"
        );
        for (&i, fxyz) in list.iter().zip(values.chunks_exact(3)) {
            let f = &mut st.atoms.f[i as usize];
            f[0] += fxyz[0];
            f[1] += fxyz[1];
            f[2] += fxyz[2];
        }
    }

    /// Pack local scalars (EAM fp) of send list `k` (forward-scalar).
    #[must_use]
    pub fn pack_forward_scalar(&self, st: &RankState, k: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.send_lists[k].len());
        self.pack_forward_scalar_into(st, k, &mut out);
        out
    }

    /// Sink-generic form of [`P2pGhosts::pack_forward_scalar`].
    pub fn pack_forward_scalar_into(&self, st: &RankState, k: usize, out: &mut impl wire::F64Sink) {
        for &i in &self.send_lists[k] {
            out.put_f64(st.scalar[i as usize]);
        }
    }

    /// Write received scalars into ghost segment `k` of `st.scalar`.
    pub fn unpack_forward_scalar(&self, st: &mut RankState, k: usize, values: &[f64]) {
        let (start, count) = self.ghost_seg[k];
        assert_eq!(values.len(), count, "scalar payload size mismatch");
        st.scalar[start..start + count].copy_from_slice(values);
    }

    /// Pack ghost scalars (EAM rho) of segment `k` (reverse-scalar).
    #[must_use]
    pub fn pack_reverse_scalar(&self, st: &RankState, k: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ghost_seg[k].1);
        self.pack_reverse_scalar_into(st, k, &mut out);
        out
    }

    /// Sink-generic form of [`P2pGhosts::pack_reverse_scalar`].
    pub fn pack_reverse_scalar_into(&self, st: &RankState, k: usize, out: &mut impl wire::F64Sink) {
        let (start, count) = self.ghost_seg[k];
        out.put_f64s(&st.scalar[start..start + count]);
    }

    /// Payload size (f64s) of the scalar ops for edge `k`: the send list
    /// on the forward side, the ghost segment on the reverse side.
    #[must_use]
    pub fn scalar_f64s(&self, k: usize, reverse: bool) -> usize {
        if reverse {
            self.ghost_seg[k].1
        } else {
            self.send_lists[k].len()
        }
    }

    /// Accumulate received scalars into send list `k` of `st.scalar`.
    pub fn unpack_reverse_scalar(&self, st: &mut RankState, k: usize, values: &[f64]) {
        let list = &self.send_lists[k];
        assert_eq!(values.len(), list.len(), "scalar payload size mismatch");
        for (&i, v) in list.iter().zip(values) {
            st.scalar[i as usize] += v;
        }
    }

    /// Total atoms currently in all send lists (message-volume observable).
    #[must_use]
    pub fn total_send_atoms(&self) -> usize {
        self.send_lists.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CommPlan, PlanConfig};
    use crate::sf::CommGraph;
    use crate::topo_map::{Placement, RankMap};
    use tofumd_md::atom::Atoms;
    use tofumd_md::region::Box3;
    use tofumd_tofu::CellGrid;

    /// Build a single-rank state with a 10^3 sub-box at the grid origin.
    fn state_with_atoms(pos: Vec<[f64; 3]>) -> (RankState, SendSelector) {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        let rg = map.rank_grid;
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        let plan = CommPlan::build(0, &map, &global, 2.0, PlanConfig::NEWTON);
        let graph = CommGraph::from_grid(plan);
        let sel = graph.selector();
        (RankState::new(Atoms::from_positions(pos, 1), graph), sel)
    }

    #[test]
    fn interior_atoms_are_not_packed() {
        let (st, sel) = state_with_atoms(vec![[5.0, 5.0, 5.0]]);
        let mut g = P2pGhosts::default();
        let payloads = g.pack_border(&st, &sel);
        assert!(payloads.iter().all(Vec::is_empty));
        assert_eq!(g.total_send_atoms(), 0);
    }

    #[test]
    fn border_atom_packed_toward_matching_links() {
        // Atom near the low-x low-y low-z corner: goes to every send link
        // whose offset has non-positive components matching those faces.
        let (st, sel) = state_with_atoms(vec![[0.5, 0.5, 0.5]]);
        let mut g = P2pGhosts::default();
        let payloads = g.pack_border(&st, &sel);
        let sent: usize = payloads.iter().filter(|p| !p.is_empty()).count();
        // send_to = lower-half offsets; the --- corner matches 7 of 13.
        assert_eq!(sent, 7);
        // Each payload is one full record.
        for p in payloads.iter().filter(|p| !p.is_empty()) {
            assert_eq!(p.len(), wire::BORDER_RECORD_F64S);
        }
    }

    #[test]
    fn forward_reverse_roundtrip_between_two_states() {
        // Rank A (grid 0,0,0) border-packs toward its -x neighbor; simulate
        // the neighbor side with a second state and check force return.
        let (mut a, sel) = state_with_atoms(vec![[0.5, 5.0, 5.0]]);
        let mut ga = P2pGhosts::default();
        let payloads = ga.pack_border(&a, &sel);
        // Find the link with offset (-1, 0, 0).
        let k = a
            .graph
            .send
            .iter()
            .position(|l| l.offset.d == [-1, 0, 0])
            .unwrap();
        assert_eq!(payloads[k].len(), 4);

        // Neighbor state B receives the border payload on its recv side
        // (same link index by construction).
        let (mut b, _) = state_with_atoms(vec![[9.5, 5.0, 5.0]]);
        let n_links = b.graph.recv.len();
        let mut per_link = vec![Vec::new(); n_links];
        per_link[k] = payloads[k].clone();
        let mut gb = P2pGhosts::default();
        gb.unpack_border(&mut b, &per_link);
        assert_eq!(b.atoms.nghost(), 1);
        // The ghost carries A's tag and the PBC-shifted position.
        assert_eq!(b.atoms.tag[b.atoms.nlocal], 1);

        // Forward: A moves its atom, repacks, B sees the new position.
        a.atoms.x[0] = [0.25, 5.5, 5.0];
        let fwd = ga.pack_forward(&a, k);
        gb.unpack_forward(&mut b, k, &fwd);
        let g_idx = b.atoms.nlocal;
        let shift = a.graph.send[k].shift;
        assert!((b.atoms.x[g_idx][0] - (0.25 + shift[0])).abs() < 1e-12);
        assert!((b.atoms.x[g_idx][1] - 5.5).abs() < 1e-12);

        // Reverse: B accumulates force on the ghost; A folds it back.
        b.atoms.f[g_idx] = [1.0, -2.0, 0.5];
        let rev = gb.pack_reverse(&b, k);
        a.atoms.f[0] = [0.1, 0.0, 0.0];
        ga.unpack_reverse(&mut a, k, &rev);
        assert!((a.atoms.f[0][0] - 1.1).abs() < 1e-12);
        assert!((a.atoms.f[0][1] - -2.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_roundtrip() {
        let (mut a, sel) = state_with_atoms(vec![[0.5, 5.0, 5.0]]);
        let mut ga = P2pGhosts::default();
        let payloads = ga.pack_border(&a, &sel);
        let k = a
            .graph
            .send
            .iter()
            .position(|l| l.offset.d == [-1, 0, 0])
            .unwrap();
        let (mut b, _) = state_with_atoms(vec![[9.5, 5.0, 5.0]]);
        let mut per_link = vec![Vec::new(); b.graph.recv.len()];
        per_link[k] = payloads[k].clone();
        let mut gb = P2pGhosts::default();
        gb.unpack_border(&mut b, &per_link);

        // Forward scalar: A's fp reaches B's ghost slot.
        a.scalar = vec![7.5]; // one local atom
        let fs = ga.pack_forward_scalar(&a, k);
        b.scalar = vec![0.0; b.atoms.ntotal()];
        gb.unpack_forward_scalar(&mut b, k, &fs);
        assert_eq!(b.scalar[b.atoms.nlocal], 7.5);

        // Reverse scalar: B's ghost rho folds into A's local rho.
        b.scalar[b.atoms.nlocal] = 1.25;
        let rs = gb.pack_reverse_scalar(&b, k);
        a.scalar = vec![1.0];
        ga.unpack_reverse_scalar(&mut a, k, &rs);
        assert!((a.scalar[0] - 2.25).abs() < 1e-12);
    }

    #[test]
    fn ghost_layout_is_deterministic() {
        let (mut st, _) = state_with_atoms(vec![[5.0; 3]]);
        let mut g = P2pGhosts::default();
        let mut per_link = vec![Vec::new(); st.graph.recv.len()];
        let mut p0 = Vec::new();
        wire::push_border_record(&mut p0, 11, 1, [1.0; 3]);
        wire::push_border_record(&mut p0, 12, 1, [2.0; 3]);
        per_link[0] = p0;
        let mut p2 = Vec::new();
        wire::push_border_record(&mut p2, 13, 1, [3.0; 3]);
        per_link[2] = p2;
        g.unpack_border(&mut st, &per_link);
        assert_eq!(g.ghost_seg[0], (1, 2));
        assert_eq!(g.ghost_seg[1], (3, 0));
        assert_eq!(g.ghost_seg[2], (3, 1));
        assert_eq!(st.atoms.nghost(), 3);
    }
}
