//! Wire encoding of ghost data, including the message-combine framing.
//!
//! §3.5.1: MPI transfers of unknown-length arrays classically need a length
//! message followed by a payload message; the paper *combines* them by
//! making the first 8 bytes of the single message the element count. Both
//! protocols are implemented here so the ablation bench can compare them.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialize a flat `f64` slice to little-endian bytes.
#[must_use]
pub fn encode_f64s(values: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for v in values {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Deserialize little-endian bytes into `f64`s. Panics if the length is not
/// a multiple of 8 (a framing bug, not a recoverable condition).
#[must_use]
pub fn decode_f64s(mut bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "payload not f64-aligned: {}",
        bytes.len()
    );
    let mut out = Vec::with_capacity(bytes.len() / 8);
    while bytes.has_remaining() {
        out.push(bytes.get_f64_le());
    }
    out
}

/// Message-combine framing: `[count: u64 LE][count * f64]` in one message.
#[must_use]
pub fn frame_combined(values: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + values.len() * 8);
    buf.put_u64_le(values.len() as u64);
    for v in values {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Parse a combined frame; tolerates trailing slack (receive buffers are
/// sized for the maximum message, the count field says how much is real).
#[must_use]
pub fn parse_combined(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len() >= 8, "combined frame shorter than its header");
    let mut hdr = &bytes[..8];
    let count = hdr.get_u64_le() as usize;
    let need = 8 + count * 8;
    assert!(
        bytes.len() >= need,
        "combined frame truncated: header claims {count} values, only {} bytes",
        bytes.len()
    );
    decode_f64s(&bytes[8..need])
}

/// Size in bytes of a combined frame carrying `n` values.
#[must_use]
pub fn combined_size(n: usize) -> usize {
    8 + n * 8
}

/// Bytes of the combined frame's count header.
pub const COMBINED_HEADER_BYTES: usize = 8;

/// Destination for streamed `f64` payloads. The pack routines are written
/// once against this trait and run unchanged over either a staging `Vec`
/// (classic path, later copied by [`frame_combined`]) or a
/// [`CombinedWriter`] over a registered region (zero-copy path, no staging
/// copy at all).
pub trait F64Sink {
    /// Append one value.
    fn put_f64(&mut self, v: f64);

    /// Append a run of values.
    fn put_f64s(&mut self, vs: &[f64]) {
        for &v in vs {
            self.put_f64(v);
        }
    }
}

impl F64Sink for Vec<f64> {
    fn put_f64(&mut self, v: f64) {
        self.push(v);
    }

    fn put_f64s(&mut self, vs: &[f64]) {
        self.extend_from_slice(vs);
    }
}

/// Serializes a combined frame *in place* into a caller-provided byte
/// buffer — in the zero-copy wire path that buffer is a slice of a
/// registered RDMA region, so the frame is built exactly where the NIC
/// reads it and never passes through an intermediate `Vec`.
///
/// The 8-byte count header is reserved up front and patched by
/// [`CombinedWriter::finish`], so the element count need not be known
/// before packing starts. Output bytes are identical to
/// [`frame_combined`] over the same values.
pub struct CombinedWriter<'a> {
    buf: &'a mut [u8],
    count: usize,
}

impl<'a> CombinedWriter<'a> {
    /// Start a frame at the head of `buf`. Panics if the buffer cannot
    /// even hold the header — a sizing bug, not a recoverable condition.
    #[must_use]
    pub fn new(buf: &'a mut [u8]) -> Self {
        assert!(
            buf.len() >= COMBINED_HEADER_BYTES,
            "region slice shorter than the combined-frame header"
        );
        CombinedWriter { buf, count: 0 }
    }

    /// Values appended so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// How many values fit in the underlying buffer.
    #[must_use]
    pub fn capacity(&self) -> usize {
        (self.buf.len() - COMBINED_HEADER_BYTES) / 8
    }

    /// Patch the count header and return the framed length in bytes
    /// (`combined_size(count)`). The puttable frame is `buf[..len]`.
    #[must_use]
    pub fn finish(self) -> usize {
        self.buf[..COMBINED_HEADER_BYTES].copy_from_slice(&(self.count as u64).to_le_bytes());
        combined_size(self.count)
    }
}

impl F64Sink for CombinedWriter<'_> {
    /// Panics past capacity — writing beyond a registered region is a
    /// hard fault on real hardware too.
    fn put_f64(&mut self, v: f64) {
        let at = COMBINED_HEADER_BYTES + self.count * 8;
        self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
        self.count += 1;
    }
}

/// Encode one border-stage atom record: tag and type packed into one f64
/// (tag in the low 48 bits, type in the next 8 — both exact in a double's
/// 53-bit mantissa), followed by x, y, z.
pub fn push_border_record(out: &mut Vec<f64>, tag: u64, typ: u32, x: [f64; 3]) {
    out.push(pack_id(tag, typ));
    out.extend_from_slice(&x);
}

/// Number of f64 slots per border record.
pub const BORDER_RECORD_F64S: usize = 4;

/// Pack (tag, type) into one exactly-representable f64.
#[must_use]
pub fn pack_id(tag: u64, typ: u32) -> f64 {
    assert!(tag < (1 << 48), "tag exceeds the 48-bit wire budget");
    assert!(typ < (1 << 5), "type exceeds the 5-bit wire budget");
    (tag | (u64::from(typ) << 48)) as f64
}

/// Unpack a [`pack_id`] value.
#[must_use]
pub fn unpack_id(v: f64) -> (u64, u32) {
    let bits = v as u64;
    (bits & ((1 << 48) - 1), (bits >> 48) as u32)
}

/// Decode border records; yields (tag, type, position).
#[must_use]
pub fn parse_border_records(values: &[f64]) -> Vec<(u64, u32, [f64; 3])> {
    assert!(
        values.len().is_multiple_of(BORDER_RECORD_F64S),
        "border payload not a whole number of records"
    );
    values
        .chunks_exact(BORDER_RECORD_F64S)
        .map(|c| {
            let (tag, typ) = unpack_id(c[0]);
            (tag, typ, [c[1], c[2], c[3]])
        })
        .collect()
}

/// Encode one exchange-stage atom record: packed tag/type, x, v (7 slots).
pub fn push_exchange_record(out: &mut Vec<f64>, tag: u64, typ: u32, x: [f64; 3], v: [f64; 3]) {
    out.push(pack_id(tag, typ));
    out.extend_from_slice(&x);
    out.extend_from_slice(&v);
}

/// Number of f64 slots per exchange record.
pub const EXCHANGE_RECORD_F64S: usize = 7;

/// Decode exchange records; yields (tag, type, position, velocity).
#[must_use]
pub fn parse_exchange_records(values: &[f64]) -> Vec<(u64, u32, [f64; 3], [f64; 3])> {
    assert!(
        values.len().is_multiple_of(EXCHANGE_RECORD_F64S),
        "exchange payload not a whole number of records"
    );
    values
        .chunks_exact(EXCHANGE_RECORD_F64S)
        .map(|c| {
            let (tag, typ) = unpack_id(c[0]);
            (tag, typ, [c[1], c[2], c[3]], [c[4], c[5], c[6]])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let vals = vec![0.0, -1.5, std::f64::consts::PI, 1e300, -0.0];
        assert_eq!(decode_f64s(&encode_f64s(&vals)), vals);
    }

    #[test]
    fn combined_frame_roundtrip() {
        let vals = vec![1.0, 2.0, 3.5];
        let frame = frame_combined(&vals);
        assert_eq!(frame.len(), combined_size(3));
        assert_eq!(parse_combined(&frame), vals);
    }

    #[test]
    fn combined_frame_tolerates_slack() {
        let vals = vec![9.0, -9.0];
        let mut padded = frame_combined(&vals).to_vec();
        padded.extend_from_slice(&[0u8; 64]); // max-size recv buffer slack
        assert_eq!(parse_combined(&padded), vals);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_frame_detected() {
        let frame = frame_combined(&[1.0, 2.0, 3.0]);
        let _ = parse_combined(&frame[..frame.len() - 8]);
    }

    #[test]
    fn empty_combined_frame() {
        let frame = frame_combined(&[]);
        assert_eq!(frame.len(), 8);
        assert!(parse_combined(&frame).is_empty());
    }

    #[test]
    fn writer_bytes_match_frame_combined() {
        let vals = [1.0, -2.5, 3.25e10, -0.0, f64::MIN_POSITIVE];
        let mut buf = vec![0xAAu8; combined_size(vals.len()) + 16]; // slack
        let mut w = CombinedWriter::new(&mut buf);
        w.put_f64(vals[0]);
        w.put_f64s(&vals[1..]);
        assert_eq!(w.count(), vals.len());
        let len = w.finish();
        assert_eq!(len, combined_size(vals.len()));
        assert_eq!(&buf[..len], frame_combined(&vals).as_ref());
        // Slack past the frame is untouched and tolerated by the parser.
        assert_eq!(parse_combined(&buf), vals);
    }

    #[test]
    fn writer_empty_frame() {
        let mut buf = [0u8; 8];
        let w = CombinedWriter::new(&mut buf);
        assert_eq!(w.capacity(), 0);
        assert_eq!(w.finish(), combined_size(0));
        assert_eq!(&buf[..], frame_combined(&[]).as_ref());
    }

    #[test]
    fn vec_sink_matches_push_order() {
        let mut v: Vec<f64> = Vec::new();
        v.put_f64(1.0);
        v.put_f64s(&[2.0, 3.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn writer_overflow_faults() {
        let mut buf = [0u8; 16]; // header + one value
        let mut w = CombinedWriter::new(&mut buf);
        w.put_f64(1.0);
        w.put_f64(2.0);
    }

    #[test]
    fn border_records_roundtrip() {
        let mut buf = Vec::new();
        push_border_record(&mut buf, 42, 1, [1.0, 2.0, 3.0]);
        push_border_record(&mut buf, 7, 3, [-1.0, 0.0, 9.5]);
        let recs = parse_border_records(&buf);
        assert_eq!(
            recs,
            vec![(42, 1, [1.0, 2.0, 3.0]), (7, 3, [-1.0, 0.0, 9.5])]
        );
    }

    #[test]
    fn exchange_records_roundtrip() {
        let mut buf = Vec::new();
        push_exchange_record(&mut buf, 3, 2, [1.0; 3], [0.5, -0.5, 0.0]);
        let recs = parse_exchange_records(&buf);
        assert_eq!(recs, vec![(3, 2, [1.0; 3], [0.5, -0.5, 0.0])]);
    }

    #[test]
    fn packed_ids_are_exact_at_the_budget_edges() {
        let tag = (1u64 << 48) - 1;
        for typ in [0u32, 1, 31] {
            let (t, ty) = unpack_id(pack_id(tag, typ));
            assert_eq!((t, ty), (tag, typ));
        }
        let (t, ty) = unpack_id(pack_id(1, 0));
        assert_eq!((t, ty), (1, 0));
    }

    #[test]
    #[should_panic(expected = "48-bit")]
    fn oversized_tag_rejected() {
        let _ = pack_id(1 << 48, 0);
    }
}
