//! Wire encoding of ghost data, including the message-combine framing.
//!
//! §3.5.1: MPI transfers of unknown-length arrays classically need a length
//! message followed by a payload message; the paper *combines* them by
//! making the first 8 bytes of the single message the element count. Both
//! protocols are implemented here so the ablation bench can compare them.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialize a flat `f64` slice to little-endian bytes.
#[must_use]
pub fn encode_f64s(values: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for v in values {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Deserialize little-endian bytes into `f64`s. Panics if the length is not
/// a multiple of 8 (a framing bug, not a recoverable condition).
#[must_use]
pub fn decode_f64s(mut bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "payload not f64-aligned: {}",
        bytes.len()
    );
    let mut out = Vec::with_capacity(bytes.len() / 8);
    while bytes.has_remaining() {
        out.push(bytes.get_f64_le());
    }
    out
}

/// Message-combine framing: `[count: u64 LE][count * f64]` in one message.
#[must_use]
pub fn frame_combined(values: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + values.len() * 8);
    buf.put_u64_le(values.len() as u64);
    for v in values {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Parse a combined frame; tolerates trailing slack (receive buffers are
/// sized for the maximum message, the count field says how much is real).
#[must_use]
pub fn parse_combined(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len() >= 8, "combined frame shorter than its header");
    let mut hdr = &bytes[..8];
    let count = hdr.get_u64_le() as usize;
    let need = 8 + count * 8;
    assert!(
        bytes.len() >= need,
        "combined frame truncated: header claims {count} values, only {} bytes",
        bytes.len()
    );
    decode_f64s(&bytes[8..need])
}

/// Size in bytes of a combined frame carrying `n` values.
#[must_use]
pub fn combined_size(n: usize) -> usize {
    8 + n * 8
}

/// Encode one border-stage atom record: tag and type packed into one f64
/// (tag in the low 48 bits, type in the next 8 — both exact in a double's
/// 53-bit mantissa), followed by x, y, z.
pub fn push_border_record(out: &mut Vec<f64>, tag: u64, typ: u32, x: [f64; 3]) {
    out.push(pack_id(tag, typ));
    out.extend_from_slice(&x);
}

/// Number of f64 slots per border record.
pub const BORDER_RECORD_F64S: usize = 4;

/// Pack (tag, type) into one exactly-representable f64.
#[must_use]
pub fn pack_id(tag: u64, typ: u32) -> f64 {
    assert!(tag < (1 << 48), "tag exceeds the 48-bit wire budget");
    assert!(typ < (1 << 5), "type exceeds the 5-bit wire budget");
    (tag | (u64::from(typ) << 48)) as f64
}

/// Unpack a [`pack_id`] value.
#[must_use]
pub fn unpack_id(v: f64) -> (u64, u32) {
    let bits = v as u64;
    (bits & ((1 << 48) - 1), (bits >> 48) as u32)
}

/// Decode border records; yields (tag, type, position).
#[must_use]
pub fn parse_border_records(values: &[f64]) -> Vec<(u64, u32, [f64; 3])> {
    assert!(
        values.len().is_multiple_of(BORDER_RECORD_F64S),
        "border payload not a whole number of records"
    );
    values
        .chunks_exact(BORDER_RECORD_F64S)
        .map(|c| {
            let (tag, typ) = unpack_id(c[0]);
            (tag, typ, [c[1], c[2], c[3]])
        })
        .collect()
}

/// Encode one exchange-stage atom record: packed tag/type, x, v (7 slots).
pub fn push_exchange_record(out: &mut Vec<f64>, tag: u64, typ: u32, x: [f64; 3], v: [f64; 3]) {
    out.push(pack_id(tag, typ));
    out.extend_from_slice(&x);
    out.extend_from_slice(&v);
}

/// Number of f64 slots per exchange record.
pub const EXCHANGE_RECORD_F64S: usize = 7;

/// Decode exchange records; yields (tag, type, position, velocity).
#[must_use]
pub fn parse_exchange_records(values: &[f64]) -> Vec<(u64, u32, [f64; 3], [f64; 3])> {
    assert!(
        values.len().is_multiple_of(EXCHANGE_RECORD_F64S),
        "exchange payload not a whole number of records"
    );
    values
        .chunks_exact(EXCHANGE_RECORD_F64S)
        .map(|c| {
            let (tag, typ) = unpack_id(c[0]);
            (tag, typ, [c[1], c[2], c[3]], [c[4], c[5], c[6]])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let vals = vec![0.0, -1.5, std::f64::consts::PI, 1e300, -0.0];
        assert_eq!(decode_f64s(&encode_f64s(&vals)), vals);
    }

    #[test]
    fn combined_frame_roundtrip() {
        let vals = vec![1.0, 2.0, 3.5];
        let frame = frame_combined(&vals);
        assert_eq!(frame.len(), combined_size(3));
        assert_eq!(parse_combined(&frame), vals);
    }

    #[test]
    fn combined_frame_tolerates_slack() {
        let vals = vec![9.0, -9.0];
        let mut padded = frame_combined(&vals).to_vec();
        padded.extend_from_slice(&[0u8; 64]); // max-size recv buffer slack
        assert_eq!(parse_combined(&padded), vals);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_frame_detected() {
        let frame = frame_combined(&[1.0, 2.0, 3.0]);
        let _ = parse_combined(&frame[..frame.len() - 8]);
    }

    #[test]
    fn empty_combined_frame() {
        let frame = frame_combined(&[]);
        assert_eq!(frame.len(), 8);
        assert!(parse_combined(&frame).is_empty());
    }

    #[test]
    fn border_records_roundtrip() {
        let mut buf = Vec::new();
        push_border_record(&mut buf, 42, 1, [1.0, 2.0, 3.0]);
        push_border_record(&mut buf, 7, 3, [-1.0, 0.0, 9.5]);
        let recs = parse_border_records(&buf);
        assert_eq!(
            recs,
            vec![(42, 1, [1.0, 2.0, 3.0]), (7, 3, [-1.0, 0.0, 9.5])]
        );
    }

    #[test]
    fn exchange_records_roundtrip() {
        let mut buf = Vec::new();
        push_exchange_record(&mut buf, 3, 2, [1.0; 3], [0.5, -0.5, 0.0]);
        let recs = parse_exchange_records(&buf);
        assert_eq!(recs, vec![(3, 2, [1.0; 3], [0.5, -0.5, 0.0])]);
    }

    #[test]
    fn packed_ids_are_exact_at_the_budget_edges() {
        let tag = (1u64 << 48) - 1;
        for typ in [0u32, 1, 31] {
            let (t, ty) = unpack_id(pack_id(tag, typ));
            assert_eq!((t, ty), (tag, typ));
        }
        let (t, ty) = unpack_id(pack_id(1, 0));
        assert_eq!((t, ty), (1, 0));
    }

    #[test]
    #[should_panic(expected = "48-bit")]
    fn oversized_tag_rejected() {
        let _ = pack_id(1 << 48, 0);
    }
}
