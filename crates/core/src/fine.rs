//! Load balancing of neighbor messages across communication threads (§3.3).
//!
//! Each rank has 6 communication threads (one VCQ per TNI) but 13 neighbor
//! messages of very different weights: face neighbors carry the largest
//! payloads over 1 hop, corner neighbors tiny payloads over 3 hops. The
//! paper "distributes the load appropriately for each thread ... based on
//! the size of the messages and the number of hops involved" (Fig. 10).
//! This module implements that assignment (longest-processing-time greedy)
//! plus a naive round-robin comparator for the ablation bench.

use tofumd_tofu::NetParams;

/// Modeled cost of handling one neighbor message on a comm thread:
/// packing + posting + the latency the thread later absorbs waiting for
/// the farthest of its messages.
#[must_use]
pub fn link_cost(bytes: usize, hops: u32, p: &NetParams) -> f64 {
    p.pack_cost(bytes) + p.cpu_per_put_utofu + p.wire_time(bytes, hops)
}

/// Assign `costs.len()` links to `nthreads` threads minimizing the maximum
/// per-thread total (LPT greedy: heaviest link first onto the lightest
/// thread). Returns per-thread link index lists.
#[must_use]
pub fn balance_lpt(costs: &[f64], nthreads: usize) -> Vec<Vec<usize>> {
    assert!(nthreads >= 1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
    let mut loads = vec![0.0f64; nthreads];
    let mut out = vec![Vec::new(); nthreads];
    for idx in order {
        let mut t = 0;
        for (i, load) in loads.iter().enumerate().skip(1) {
            if load.total_cmp(&loads[t]).is_lt() {
                t = i;
            }
        }
        loads[t] += costs[idx];
        out[t].push(idx);
    }
    out
}

/// Round-robin assignment (the ablation baseline).
#[must_use]
pub fn balance_round_robin(n_links: usize, nthreads: usize) -> Vec<Vec<usize>> {
    assert!(nthreads >= 1);
    let mut out = vec![Vec::new(); nthreads];
    for i in 0..n_links {
        out[i % nthreads].push(i);
    }
    out
}

/// Maximum per-thread total cost of an assignment (the stage's critical
/// path through the comm threads).
#[must_use]
pub fn makespan(assignment: &[Vec<usize>], costs: &[f64]) -> f64 {
    assignment
        .iter()
        .map(|links| links.iter().map(|&i| costs[i]).sum::<f64>())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_link_once() {
        let costs = vec![5.0, 1.0, 3.0, 2.0, 4.0, 9.0, 2.5];
        let a = balance_lpt(&costs, 3);
        let mut seen: Vec<usize> = a.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_beats_or_ties_round_robin() {
        // Table-1-like weights: 3 heavy faces, 6 medium edges, 4 light
        // corners (sizes a^2 r : a r^2 : r^3 with a = 10, r = 2.5).
        let mut costs = Vec::new();
        costs.extend([250.0, 250.0, 250.0]);
        costs.extend([62.5; 6]);
        costs.extend([15.6; 4]);
        let lpt = makespan(&balance_lpt(&costs, 6), &costs);
        let rr = makespan(&balance_round_robin(costs.len(), 6), &costs);
        assert!(lpt <= rr, "LPT {lpt} must not exceed round-robin {rr}");
        // For this weight profile LPT is strictly better.
        assert!(lpt < rr, "LPT should strictly win here: {lpt} vs {rr}");
    }

    #[test]
    fn makespan_lower_bound() {
        let costs = vec![4.0, 3.0, 3.0, 2.0];
        let a = balance_lpt(&costs, 2);
        let ms = makespan(&a, &costs);
        // Optimal here is 6.0 = (4+2 | 3+3); LPT achieves it.
        assert_eq!(ms, 6.0);
    }

    #[test]
    fn more_threads_than_links() {
        let costs = vec![1.0, 2.0];
        let a = balance_lpt(&costs, 6);
        assert_eq!(a.iter().filter(|l| !l.is_empty()).count(), 2);
        assert_eq!(makespan(&a, &costs), 2.0);
    }

    #[test]
    fn link_cost_increases_with_bytes_and_hops() {
        let p = NetParams::default();
        assert!(link_cost(1000, 1, &p) > link_cost(100, 1, &p));
        assert!(link_cost(100, 3, &p) > link_cost(100, 1, &p));
    }

    #[test]
    fn single_thread_gets_everything() {
        let costs = vec![1.0; 13];
        let a = balance_lpt(&costs, 1);
        assert_eq!(a[0].len(), 13);
    }
}
