//! The ghost-communication engine abstraction.
//!
//! A [`GhostEngine`] realizes one of the paper's communication designs
//! (MPI 3-stage, MPI p2p, uTofu 3-stage, uTofu p2p over 4 or 6 TNIs,
//! thread-pool parallel p2p). Engines are driven in lockstep by
//! `tofumd-runtime`: every rank first `post`s its sends for a round, then
//! every rank `complete`s its receives — mirroring a bulk-synchronous MD
//! timestep while letting virtual time flow through the simulated fabric.

use crate::sf::CommGraph;
use serde::{Deserialize, Serialize};
use tofumd_md::atom::Atoms;
use tofumd_tofu::TofuError;

/// A ghost-communication operation within a timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Establish ghost atoms (tags + positions); runs after exchange on
    /// reneighbor steps.
    Border,
    /// Refresh ghost positions (every step).
    Forward,
    /// Fold ghost forces back to their owners (Newton on).
    Reverse,
    /// EAM mid-pair-stage: send local scalars (F') to ghosts.
    ForwardScalar,
    /// EAM mid-pair-stage: fold ghost scalars (rho) back to owners.
    ReverseScalar,
    /// Atom migration on reneighbor steps: three staged sweeps moving
    /// out-of-bounds atoms (with velocities) to the face neighbors, exactly
    /// as LAMMPS's exchange works for every communication pattern.
    Exchange,
}

/// Number of distinct [`Op`] kinds.
pub const N_OPS: usize = 6;

impl Op {
    /// Every op kind in display order: migration first, then the
    /// ghost-side ops, the owner-side fold, and EAM's scalar pair.
    pub const ALL: [Op; N_OPS] = [
        Op::Exchange,
        Op::Border,
        Op::Forward,
        Op::Reverse,
        Op::ForwardScalar,
        Op::ReverseScalar,
    ];

    /// Dense index of this op into [`Op::ALL`]-ordered tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Op::Exchange => 0,
            Op::Border => 1,
            Op::Forward => 2,
            Op::Reverse => 3,
            Op::ForwardScalar => 4,
            Op::ReverseScalar => 5,
        }
    }

    /// Short lower-case label for report rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Op::Exchange => "exchange",
            Op::Border => "border",
            Op::Forward => "forward",
            Op::Reverse => "reverse",
            Op::ForwardScalar => "fwd-scalar",
            Op::ReverseScalar => "rev-scalar",
        }
    }
}

/// Live communication counters (the in-vivo counterpart of Table 1's
/// `total_msg` and `total_atom` columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Messages posted (payload puts; piggyback-only descriptors excluded).
    pub messages: u64,
    /// Payload bytes posted (framing included where the transport frames).
    pub bytes: u64,
    /// Largest single message observed (bytes).
    pub max_msg_bytes: u64,
    /// Dynamic buffer-growth events (§3.4 re-registration handshakes).
    pub growth_events: u64,
    /// Put retransmissions after a transport error (each also charged
    /// backoff on the virtual clock).
    pub retries: u64,
    /// Messages handed to the reliable stack after the retry budget was
    /// exhausted (each one requests engine fallback).
    pub fallback_sends: u64,
    /// Duplicate deliveries detected and discarded on receive.
    pub dup_drops: u64,
    /// Receive-buffer overwrites detected (a newer sequence landed on an
    /// unconsumed round-robin slot).
    pub overwrites: u64,
    /// Send-side staging bytes: payload bytes that passed through an
    /// intermediate CPU copy before reaching the transport. The zero-copy
    /// wire path serializes straight into a registered region and counts
    /// nothing here — the acceptance signal that the copy is really gone.
    #[serde(default)]
    pub bytes_copied: u64,
}

impl CommStats {
    /// Count one message of `bytes` bytes.
    pub fn count(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.max_msg_bytes = self.max_msg_bytes.max(bytes as u64);
    }

    /// Count `bytes` staged through an intermediate send-side copy.
    pub fn copied(&mut self, bytes: usize) {
        self.bytes_copied += bytes as u64;
    }

    /// Transport-anomaly total: everything that is not plain traffic.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.fallback_sends + self.dup_drops + self.overwrites
    }

    /// Fold another counter set into this one (messages and bytes add,
    /// the max-message watermark takes the larger side).
    pub fn merge(&mut self, other: &CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.max_msg_bytes = self.max_msg_bytes.max(other.max_msg_bytes);
        self.growth_events += other.growth_events;
        self.retries += other.retries;
        self.fallback_sends += other.fallback_sends;
        self.dup_drops += other.dup_drops;
        self.overwrites += other.overwrites;
        self.bytes_copied += other.bytes_copied;
    }

    /// Counter-wise difference against an earlier reading of the same
    /// monotone counters (`max_msg_bytes` is a watermark and carries over).
    #[must_use]
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            messages: self.messages - earlier.messages,
            bytes: self.bytes - earlier.bytes,
            max_msg_bytes: self.max_msg_bytes,
            growth_events: self.growth_events - earlier.growth_events,
            retries: self.retries - earlier.retries,
            fallback_sends: self.fallback_sends - earlier.fallback_sends,
            dup_drops: self.dup_drops - earlier.dup_drops,
            overwrites: self.overwrites - earlier.overwrites,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
        }
    }
}

/// [`CommStats`] resolved along the two axes the lockstep driver iterates:
/// operation kind and round within the operation. Engines accumulate into
/// this; the runtime aggregates it across ranks for telemetry reports.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// `rounds[op.index()][round]`, grown on first use per round.
    rounds: [Vec<CommStats>; N_OPS],
}

impl OpStats {
    fn slot(&mut self, op: Op, round: usize) -> &mut CommStats {
        let v = &mut self.rounds[op.index()];
        if v.len() <= round {
            v.resize(round + 1, CommStats::default());
        }
        &mut v[round]
    }

    /// Count one message of `bytes` bytes under `(op, round)`.
    pub fn count(&mut self, op: Op, round: usize, bytes: usize) {
        self.slot(op, round).count(bytes);
    }

    /// Count `bytes` staged through a send-side copy under `(op, round)`.
    pub fn copied(&mut self, op: Op, round: usize, bytes: usize) {
        self.slot(op, round).copied(bytes);
    }

    /// Record one dynamic buffer-growth event under `(op, round)`.
    pub fn growth(&mut self, op: Op, round: usize) {
        self.slot(op, round).growth_events += 1;
    }

    /// Record one put retransmission under `(op, round)`.
    pub fn retry(&mut self, op: Op, round: usize) {
        self.slot(op, round).retries += 1;
    }

    /// Record one budget-exhausted reliable-stack send under `(op, round)`.
    pub fn fallback(&mut self, op: Op, round: usize) {
        self.slot(op, round).fallback_sends += 1;
    }

    /// Record `n` discarded duplicate deliveries under `(op, round)`.
    pub fn add_dup_drops(&mut self, op: Op, round: usize, n: u64) {
        self.slot(op, round).dup_drops += n;
    }

    /// Record `n` detected receive-buffer overwrites under `(op, round)`.
    pub fn add_overwrites(&mut self, op: Op, round: usize, n: u64) {
        self.slot(op, round).overwrites += n;
    }

    /// Per-round counters recorded for `op` (may be empty).
    #[must_use]
    pub fn rounds_of(&self, op: Op) -> &[CommStats] {
        &self.rounds[op.index()]
    }

    /// All rounds of `op` folded together.
    #[must_use]
    pub fn op_total(&self, op: Op) -> CommStats {
        let mut total = CommStats::default();
        for s in &self.rounds[op.index()] {
            total.merge(s);
        }
        total
    }

    /// Everything folded together (the legacy flat [`CommStats`] view).
    #[must_use]
    pub fn total(&self) -> CommStats {
        let mut total = CommStats::default();
        for op in Op::ALL {
            total.merge(&self.op_total(op));
        }
        total
    }

    /// Fold another rank's counters into this one, round by round.
    pub fn merge(&mut self, other: &OpStats) {
        for op in Op::ALL {
            for (round, s) in other.rounds_of(op).iter().enumerate() {
                self.slot(op, round).merge(s);
            }
        }
    }

    /// Per-(op, round) difference against an earlier reading.
    #[must_use]
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        let mut out = OpStats::default();
        for op in Op::ALL {
            let before = earlier.rounds_of(op);
            for (round, s) in self.rounds_of(op).iter().enumerate() {
                let b = before.get(round).copied().unwrap_or_default();
                *out.slot(op, round) = s.since(&b);
            }
        }
        out
    }
}

/// The coordinate `pack_exchange_graph` routes migrants by: the periodic
/// wrap of `x` into the global box, nudged one ulp off the upper face when
/// the wrap rounds onto it (the half-open boxes exclude their `hi` face —
/// see `pack_exchange` for the rounding hazard). The mid-run rebalance
/// uses the same function to predict destinations, so its migrate peer
/// lists agree bit-for-bit with what the exchange actually routes.
#[must_use]
pub fn wrap_for_exchange(global: &tofumd_md::region::Box3, x: [f64; 3]) -> [f64; 3] {
    let (mut w, _) = global.wrap(x);
    for d in 0..3 {
        if w[d] >= global.hi[d] {
            w[d] = global.hi[d].next_down();
        }
    }
    w
}

/// Per-rank simulation-side state an engine operates on.
#[derive(Debug)]
pub struct RankState {
    /// The rank's atoms (locals + ghosts).
    pub atoms: Atoms,
    /// The rank's star-forest communication graph.
    pub graph: CommGraph,
    /// Virtual clock (seconds of simulated Fugaku time).
    pub clock: f64,
    /// Time attributed to the Comm stage this step (Table 3 breakdown).
    pub comm_time: f64,
    /// Time attributed to mid-pair-stage communication (EAM; counted into
    /// the Pair stage per the paper's accounting).
    pub pair_comm_time: f64,
    /// Scalar work buffer for EAM (rho or fp), len == atoms.ntotal().
    pub scalar: Vec<f64>,
    /// Latest raw payload-arrival instant folded in by the engine's
    /// complete path (`NEG_INFINITY` when nothing arrived since the last
    /// reset). The DAG executor reads this to credit overlap: wait charged
    /// against an arrival that lands before interior compute finishes was
    /// hidden, not paid.
    pub arrival_horizon: f64,
}

impl RankState {
    /// Fresh state with a zero clock.
    #[must_use]
    pub fn new(atoms: Atoms, graph: CommGraph) -> Self {
        RankState {
            atoms,
            graph,
            clock: 0.0,
            comm_time: 0.0,
            pair_comm_time: 0.0,
            scalar: Vec::new(),
            arrival_horizon: f64::NEG_INFINITY,
        }
    }

    /// Charge `dt` of virtual time to the clock and the chosen stage
    /// bucket.
    pub fn charge(&mut self, dt: f64, op: Op) {
        self.clock += dt;
        match op {
            Op::ForwardScalar | Op::ReverseScalar => self.pair_comm_time += dt,
            _ => self.comm_time += dt,
        }
    }

    /// Exchange-stage packing for sweep `dim`: remove local atoms whose
    /// coordinate lies outside the sub-box in that dimension and encode
    /// them (tag, type, shifted position, velocity) toward each face.
    /// Ghosts must have been cleared. Returns `[toward -dim, toward +dim]`.
    pub fn pack_exchange(&mut self, dim: usize) -> [Vec<f64>; 2] {
        assert_eq!(self.atoms.nghost(), 0, "exchange runs before border");
        let (lo, hi) = (self.graph.sub.lo[dim], self.graph.sub.hi[dim]);
        let mut out = [Vec::new(), Vec::new()];
        let mut i = 0;
        while i < self.atoms.nlocal {
            let x = self.atoms.x[i];
            let dir = if x[dim] < lo {
                0
            } else if x[dim] >= hi {
                1
            } else {
                i += 1;
                continue;
            };
            let link = *self.graph.face_link(dim, dir);
            let mut nx = [
                x[0] + link.shift[0],
                x[1] + link.shift[1],
                x[2] + link.shift[2],
            ];
            // Periodic-wrap guard: the receiving sub-box is half-open
            // [lo, hi). An atom marginally outside the *global* lower face
            // can round to exactly the global upper face after the +L
            // shift (|x - lo| is far below one ulp of L), landing on the
            // receiver's hi face — outside its box, so every subsequent
            // rebuild re-migrates it and the atom ping-pongs between the
            // boundary ranks. Nudge it one ulp inside. The mirror case
            // (an atom at exactly the global upper face whose -L shift
            // rounds below the global lower face) clamps to the face
            // itself, which is inside the half-open box.
            let s = link.shift[dim];
            if s > 0.0 && nx[dim] >= lo + s {
                nx[dim] = (lo + s).next_down();
            } else if s < 0.0 && nx[dim] < hi + s {
                nx[dim] = hi + s;
            }
            crate::wire::push_exchange_record(
                &mut out[dir],
                self.atoms.tag[i],
                self.atoms.typ[i],
                nx,
                self.atoms.v[i],
            );
            self.atoms.swap_remove_local(i);
        }
        out
    }

    /// Exchange-stage packing for irregular graphs: one owner-directed
    /// round instead of three staged sweeps. Local atoms that left the
    /// sub-box are wrapped into the global box, resolved to their new
    /// owner through the decomposition, and encoded toward the matching
    /// migrate peer; periodic self-wraps are rewritten in place. Returns
    /// one payload per entry of [`CommGraph::migrate_peers`].
    pub fn pack_exchange_graph(&mut self) -> Vec<Vec<f64>> {
        assert_eq!(self.atoms.nghost(), 0, "exchange runs before border");
        let peers = self.graph.migrate_peers().to_vec();
        let global = *self.graph.global_box();
        let mut out = vec![Vec::new(); peers.len()];
        let mut i = 0;
        while i < self.atoms.nlocal {
            let x = self.atoms.x[i];
            if self.graph.sub.contains(&x) {
                i += 1;
                continue;
            }
            let w = wrap_for_exchange(&global, x);
            let owner = self.graph.owner_of(&w);
            if owner == self.graph.me {
                self.atoms.x[i] = w;
                i += 1;
            } else if let Some(p) = peers.iter().position(|p| p.rank == owner) {
                crate::wire::push_exchange_record(
                    &mut out[p],
                    self.atoms.tag[i],
                    self.atoms.typ[i],
                    w,
                    self.atoms.v[i],
                );
                self.atoms.swap_remove_local(i);
            } else {
                // Within one rebuild interval atoms cannot outrun the
                // ghost cutoff, so the new owner is always a halo peer;
                // keep the atom (wrapped) rather than lose it if that
                // invariant is ever violated.
                debug_assert!(false, "migrant outran the halo at {w:?}");
                self.atoms.x[i] = w;
                i += 1;
            }
        }
        out
    }

    /// Exchange-stage unpacking: append arriving migrants as local atoms.
    pub fn unpack_exchange(&mut self, values: &[f64]) {
        for (tag, typ, x, v) in crate::wire::parse_exchange_records(values) {
            self.atoms.push_local(x, v, typ, tag);
        }
    }
}

/// One of the paper's communication designs, driven in lockstep rounds.
pub trait GhostEngine: Send {
    /// Human-readable variant name (figure labels).
    fn name(&self) -> &'static str;

    /// How many post/complete rounds `op` takes (p2p: 1; 3-stage: 3).
    fn rounds(&self, op: Op) -> usize;

    /// Whether the driver must globally synchronize clocks between rounds
    /// (the 3-stage pattern's mandatory MPI barrier, §3.1).
    fn barrier_between_rounds(&self) -> bool {
        false
    }

    /// Pack and send this rank's messages for `(op, round)`.
    ///
    /// An `Err` is a transport failure the engine could not absorb through
    /// its own recovery (retry, reliable-stack escape) — the driver treats
    /// it as fatal for the run. Recoverable faults are handled internally
    /// and only surface through counters and [`Self::fallback_requested`].
    fn post(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError>;

    /// Receive and unpack this rank's messages for `(op, round)`.
    fn complete(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError>;

    /// Setup-stage modeled cost already paid (memory registrations, buffer
    /// pre-sizing): reported separately, not charged to step time.
    fn setup_cost(&self) -> f64 {
        0.0
    }

    /// Cumulative message counters since construction (all ops folded).
    fn stats(&self) -> CommStats {
        self.op_stats().total()
    }

    /// Cumulative per-(op, round) message counters since construction.
    fn op_stats(&self) -> OpStats {
        OpStats::default()
    }

    /// True once the engine has exhausted a retry budget and wants the
    /// driver to demote the whole cluster to a reliable transport at the
    /// next safe point (end of step). Sticky once set.
    fn fallback_requested(&self) -> bool {
        false
    }

    /// Drop any caches keyed off `st.graph` — the driver calls this after
    /// swapping the rank's graph during a mid-run rebalance, before the
    /// next communication op runs. Engines whose per-edge state is rebuilt
    /// each Border (or who keep none) use the default no-op.
    fn rebind_graph(&mut self, _st: &RankState) {}
}

/// Run one complete ghost operation through an engine for a *single rank
/// in isolation* (test helper; the real driver interleaves many ranks).
#[cfg(test)]
pub fn run_op_single(engine: &mut dyn GhostEngine, op: Op, st: &mut RankState) {
    for round in 0..engine.rounds(op) {
        engine.post(op, round, st).expect("post failed");
        engine.complete(op, round, st).expect("complete failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CommPlan, PlanConfig};
    use crate::topo_map::{Placement, RankMap};
    use tofumd_md::region::Box3;
    use tofumd_tofu::CellGrid;

    fn state() -> RankState {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        let global = Box3::from_lengths([80.0, 240.0, 160.0]);
        let plan = CommPlan::build(0, &map, &global, 2.8, PlanConfig::NEWTON);
        RankState::new(
            Atoms::from_positions(vec![[1.0; 3]], 1),
            CommGraph::from_grid(plan),
        )
    }

    #[test]
    fn charge_routes_to_stage_buckets() {
        let mut st = state();
        st.charge(1.0, Op::Forward);
        st.charge(2.0, Op::ReverseScalar);
        st.charge(4.0, Op::Border);
        assert_eq!(st.clock, 7.0);
        assert_eq!(st.comm_time, 5.0);
        assert_eq!(st.pair_comm_time, 2.0);
    }

    #[test]
    fn op_indices_are_dense_and_labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(seen.insert(op.label()), "duplicate label {}", op.label());
        }
    }

    #[test]
    fn op_stats_accumulate_and_fold() {
        let mut s = OpStats::default();
        s.count(Op::Forward, 0, 100);
        s.count(Op::Forward, 0, 300);
        s.count(Op::Exchange, 2, 50);
        s.growth(Op::Border, 1);
        s.copied(Op::Forward, 0, 400);
        assert_eq!(s.op_total(Op::Forward).messages, 2);
        assert_eq!(s.op_total(Op::Forward).bytes_copied, 400);
        assert_eq!(
            s.op_total(Op::Reverse).bytes_copied,
            0,
            "zero-copy ops stay at zero"
        );
        assert_eq!(s.op_total(Op::Forward).max_msg_bytes, 300);
        assert_eq!(s.rounds_of(Op::Exchange).len(), 3);
        assert_eq!(s.rounds_of(Op::Exchange)[2].bytes, 50);
        let t = s.total();
        assert_eq!(t.messages, 3);
        assert_eq!(t.bytes, 450);
        assert_eq!(t.growth_events, 1);
        let mut m = OpStats::default();
        m.merge(&s);
        m.merge(&s);
        assert_eq!(m.total().bytes, 900);
        let d = m.since(&s);
        assert_eq!(d.total().bytes, 450);
        assert_eq!(d.op_total(Op::Forward).messages, 2);
    }

    #[test]
    fn exchange_wrap_never_lands_on_the_receiving_upper_face() {
        let mut st = state();
        assert_eq!(
            st.graph.sub.lo[0], 0.0,
            "rank 0 sits on the global lower face"
        );
        let shift = st.graph.face_link(0, 0).shift[0];
        assert!(shift > 0.0, "lower-face link wraps by +L");
        // An atom marginally below the global lower face: x + L rounds to
        // exactly L, the global (and receiving sub-box's) upper face.
        let x = -1e-18;
        assert_eq!(x + shift, shift, "premise: the shift absorbs the offset");
        st.atoms = Atoms::from_positions(vec![[x, 1.0, 1.0]], 7);
        let out = st.pack_exchange(0);
        assert_eq!(st.atoms.nlocal, 0);
        let recs = crate::wire::parse_exchange_records(&out[0]);
        assert_eq!(recs.len(), 1);
        let nx = recs[0].2[0];
        assert!(
            nx < shift,
            "wrapped coordinate {nx} must stay below the global upper face {shift}"
        );
        assert!(
            shift - nx < 1e-9,
            "only a one-ulp nudge, got {}",
            shift - nx
        );
    }

    #[test]
    fn wrapped_migrant_settles_on_the_receiving_rank() {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        let global = Box3::from_lengths([80.0, 240.0, 160.0]);
        let rg = map.rank_grid;
        let top = map.rank_at([i64::from(rg[0]) - 1, 0, 0]);
        let mk = |rank| {
            CommGraph::from_grid(CommPlan::build(
                rank,
                &map,
                &global,
                2.8,
                PlanConfig::NEWTON,
            ))
        };
        let mut sender = RankState::new(Atoms::from_positions(vec![[-1e-18, 1.0, 1.0]], 7), mk(0));
        let mut receiver = RankState::new(Atoms::default(), mk(top));
        let out = sender.pack_exchange(0);
        receiver.unpack_exchange(&out[0]);
        assert_eq!(receiver.atoms.nlocal, 1);
        // The migrant sits strictly inside the receiver's half-open
        // sub-box: a further exchange sweep must not move it again.
        let again = receiver.pack_exchange(0);
        assert!(
            again[0].is_empty() && again[1].is_empty(),
            "migrant must not ping-pong off the receiver"
        );
        assert_eq!(receiver.atoms.nlocal, 1);
    }

    #[test]
    fn irregular_migration_routes_atoms_to_their_owner() {
        use std::sync::Arc;
        use tofumd_md::domain::RcbDecomposition;
        let grid = CellGrid::new([1, 1, 1]);
        let map = RankMap::new(grid, Placement::TopoAware);
        let global = Box3::from_lengths([20.0, 16.0, 12.0]);
        let pts: Vec<[f64; 3]> = (0..200)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let u = |s: u32| ((h >> s) & 0xffff) as f64 / 65536.0;
                [u(0) * 20.0, u(16) * 16.0, u(32) * 12.0]
            })
            .collect();
        let rcb = Arc::new(RcbDecomposition::build(4, &pts, &global));
        let graphs: Vec<CommGraph> = (0..4)
            .map(|r| CommGraph::from_rcb(r, &rcb, &map, 2.5))
            .collect();
        // Give rank 0 every atom plus one out-of-box straggler; one
        // migrate round must leave each atom on its owner.
        let mut states: Vec<RankState> = graphs
            .iter()
            .enumerate()
            .map(|(r, g)| {
                let mine: Vec<[f64; 3]> = if r == 0 {
                    let mut v = pts.clone();
                    v.push([-0.5, 1.0, 1.0]); // wraps to the +x edge
                    v
                } else {
                    Vec::new()
                };
                RankState::new(Atoms::from_positions(mine, 1), g.clone())
            })
            .collect();
        let payloads = states[0].pack_exchange_graph();
        let peers = states[0].graph.migrate_peers().to_vec();
        for (p, payload) in peers.iter().zip(&payloads) {
            states[p.rank].unpack_exchange(payload);
        }
        let total: usize = states.iter().map(|s| s.atoms.nlocal).sum();
        assert_eq!(total, pts.len() + 1, "no atom lost in migration");
        for st in &states {
            for i in 0..st.atoms.nlocal {
                assert!(
                    st.graph.sub.contains(&st.atoms.x[i]),
                    "atom {:?} not owned by rank {}",
                    st.atoms.x[i],
                    st.graph.me
                );
            }
        }
        // A second round is a fixed point.
        for st in &mut states {
            let again = st.pack_exchange_graph();
            assert!(again.iter().all(Vec::is_empty), "migration must converge");
        }
    }
}
