//! The ghost-communication engine abstraction.
//!
//! A [`GhostEngine`] realizes one of the paper's communication designs
//! (MPI 3-stage, MPI p2p, uTofu 3-stage, uTofu p2p over 4 or 6 TNIs,
//! thread-pool parallel p2p). Engines are driven in lockstep by
//! `tofumd-runtime`: every rank first `post`s its sends for a round, then
//! every rank `complete`s its receives — mirroring a bulk-synchronous MD
//! timestep while letting virtual time flow through the simulated fabric.

use crate::plan::CommPlan;
use tofumd_md::atom::Atoms;

/// A ghost-communication operation within a timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Establish ghost atoms (tags + positions); runs after exchange on
    /// reneighbor steps.
    Border,
    /// Refresh ghost positions (every step).
    Forward,
    /// Fold ghost forces back to their owners (Newton on).
    Reverse,
    /// EAM mid-pair-stage: send local scalars (F') to ghosts.
    ForwardScalar,
    /// EAM mid-pair-stage: fold ghost scalars (rho) back to owners.
    ReverseScalar,
    /// Atom migration on reneighbor steps: three staged sweeps moving
    /// out-of-bounds atoms (with velocities) to the face neighbors, exactly
    /// as LAMMPS's exchange works for every communication pattern.
    Exchange,
}

/// Live communication counters (the in-vivo counterpart of Table 1's
/// `total_msg` and `total_atom` columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages posted (payload puts; piggyback-only descriptors excluded).
    pub messages: u64,
    /// Payload bytes posted (framing included where the transport frames).
    pub bytes: u64,
}

impl CommStats {
    /// Count one message of `bytes` bytes.
    pub fn count(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }
}

/// Per-rank simulation-side state an engine operates on.
#[derive(Debug)]
pub struct RankState {
    /// The rank's atoms (locals + ghosts).
    pub atoms: Atoms,
    /// The rank's communication plan.
    pub plan: CommPlan,
    /// Virtual clock (seconds of simulated Fugaku time).
    pub clock: f64,
    /// Time attributed to the Comm stage this step (Table 3 breakdown).
    pub comm_time: f64,
    /// Time attributed to mid-pair-stage communication (EAM; counted into
    /// the Pair stage per the paper's accounting).
    pub pair_comm_time: f64,
    /// Scalar work buffer for EAM (rho or fp), len == atoms.ntotal().
    pub scalar: Vec<f64>,
}

impl RankState {
    /// Fresh state with a zero clock.
    #[must_use]
    pub fn new(atoms: Atoms, plan: CommPlan) -> Self {
        RankState {
            atoms,
            plan,
            clock: 0.0,
            comm_time: 0.0,
            pair_comm_time: 0.0,
            scalar: Vec::new(),
        }
    }

    /// Charge `dt` of virtual time to the clock and the chosen stage
    /// bucket.
    pub fn charge(&mut self, dt: f64, op: Op) {
        self.clock += dt;
        match op {
            Op::ForwardScalar | Op::ReverseScalar => self.pair_comm_time += dt,
            _ => self.comm_time += dt,
        }
    }

    /// Exchange-stage packing for sweep `dim`: remove local atoms whose
    /// coordinate lies outside the sub-box in that dimension and encode
    /// them (tag, type, shifted position, velocity) toward each face.
    /// Ghosts must have been cleared. Returns `[toward -dim, toward +dim]`.
    pub fn pack_exchange(&mut self, dim: usize) -> [Vec<f64>; 2] {
        assert_eq!(self.atoms.nghost(), 0, "exchange runs before border");
        let (lo, hi) = (self.plan.sub.lo[dim], self.plan.sub.hi[dim]);
        let mut out = [Vec::new(), Vec::new()];
        let mut i = 0;
        while i < self.atoms.nlocal {
            let x = self.atoms.x[i];
            let dir = if x[dim] < lo {
                0
            } else if x[dim] >= hi {
                1
            } else {
                i += 1;
                continue;
            };
            let link = &self.plan.face_links[dim][dir];
            crate::wire::push_exchange_record(
                &mut out[dir],
                self.atoms.tag[i],
                self.atoms.typ[i],
                [
                    x[0] + link.shift[0],
                    x[1] + link.shift[1],
                    x[2] + link.shift[2],
                ],
                self.atoms.v[i],
            );
            self.atoms.swap_remove_local(i);
        }
        out
    }

    /// Exchange-stage unpacking: append arriving migrants as local atoms.
    pub fn unpack_exchange(&mut self, values: &[f64]) {
        for (tag, typ, x, v) in crate::wire::parse_exchange_records(values) {
            self.atoms.push_local(x, v, typ, tag);
        }
    }
}

/// One of the paper's communication designs, driven in lockstep rounds.
pub trait GhostEngine: Send {
    /// Human-readable variant name (figure labels).
    fn name(&self) -> &'static str;

    /// How many post/complete rounds `op` takes (p2p: 1; 3-stage: 3).
    fn rounds(&self, op: Op) -> usize;

    /// Whether the driver must globally synchronize clocks between rounds
    /// (the 3-stage pattern's mandatory MPI barrier, §3.1).
    fn barrier_between_rounds(&self) -> bool {
        false
    }

    /// Pack and send this rank's messages for `(op, round)`.
    fn post(&mut self, op: Op, round: usize, st: &mut RankState);

    /// Receive and unpack this rank's messages for `(op, round)`.
    fn complete(&mut self, op: Op, round: usize, st: &mut RankState);

    /// Setup-stage modeled cost already paid (memory registrations, buffer
    /// pre-sizing): reported separately, not charged to step time.
    fn setup_cost(&self) -> f64 {
        0.0
    }

    /// Cumulative message counters since construction.
    fn stats(&self) -> CommStats {
        CommStats::default()
    }
}

/// Run one complete ghost operation through an engine for a *single rank
/// in isolation* (test helper; the real driver interleaves many ranks).
pub fn run_op_single(engine: &mut dyn GhostEngine, op: Op, st: &mut RankState) {
    for round in 0..engine.rounds(op) {
        engine.post(op, round, st);
        engine.complete(op, round, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanConfig;
    use crate::topo_map::{Placement, RankMap};
    use tofumd_md::region::Box3;
    use tofumd_tofu::CellGrid;

    fn state() -> RankState {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        let global = Box3::from_lengths([80.0, 240.0, 160.0]);
        let plan = CommPlan::build(0, &map, &global, 2.8, PlanConfig::NEWTON);
        RankState::new(Atoms::from_positions(vec![[1.0; 3]], 1), plan)
    }

    #[test]
    fn charge_routes_to_stage_buckets() {
        let mut st = state();
        st.charge(1.0, Op::Forward);
        st.charge(2.0, Op::ReverseScalar);
        st.charge(4.0, Op::Border);
        assert_eq!(st.clock, 7.0);
        assert_eq!(st.comm_time, 5.0);
        assert_eq!(st.pair_comm_time, 2.0);
    }
}
