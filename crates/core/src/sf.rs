//! The star-forest communication graph (PetscSF-style).
//!
//! A [`CommGraph`] describes one rank's halo relationships over an
//! *arbitrary* neighbor set: `recv` edges are leaves rooted on a peer
//! (ghosts I hold), `send` edges are roots whose leaves live on a peer
//! (my border atoms the peer mirrors). The three star-forest primitives
//! map onto the engine operations: **bcast** (root → leaf) is the
//! border/forward family, **reduce** (leaf → root) is the reverse family,
//! and **migrate** moves root ownership itself on reneighbor steps.
//!
//! Two constructors exist today:
//!
//! * [`CommGraph::from_grid`] wraps the uniform-grid [`CommPlan`]
//!   unchanged — same edge order, same pairing index on both sides
//!   (`peer_index == k`), same estimates — so every engine that consumed a
//!   plan is bit-identical by construction when driven through the graph.
//! * [`CommGraph::from_rcb`] derives the edge set from a
//!   recursive-coordinate-bisection decomposition: an edge exists for each
//!   `(peer, periodic image)` whose box comes within `r_ghost` of mine.
//!
//! Determinism contract: edge lists are ordered by `(peer rank, image
//! vector)`, pairing indices are computed by reconstructing the peer's
//! edge list with the same pure function, and the lockstep driver
//! completes receives in edge order — so completion order (and the
//! virtual clock) is a pure function of the decomposition, never of
//! thread scheduling.

use crate::border_bin::BorderBins;
use crate::plan::{CommPlan, NeighborLink, PlanConfig};
use crate::topo_map::RankMap;
use std::sync::Arc;
use tofumd_md::domain::{NeighborOffset, RcbDecomposition};
use tofumd_md::region::Box3;
use tofumd_tofu::{FaultKind, FaultRule};

/// One directed halo edge of the star forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphEdge {
    /// Grid offset to the peer (zero for irregular graphs, where the edge
    /// geometry lives in `region` instead).
    pub offset: NeighborOffset,
    /// The peer's rank id.
    pub rank: usize,
    /// The peer's node id.
    pub node: usize,
    /// Network hops to the peer.
    pub hops: u32,
    /// Periodic shift added to *my* atom positions when they travel along
    /// this edge (send edges); for recv edges, the shift the peer adds, so
    /// arriving ghosts are already in my frame.
    pub shift: [f64; 3],
    /// The peer's sub-box translated into my frame: for send edges the
    /// region whose `r_ghost`-expansion selects my border atoms; for recv
    /// edges the region arriving ghosts land in.
    pub region: Box3,
    /// Index of this relationship in the peer's opposite edge list: my
    /// `send[k]` is the peer's `recv[send[k].peer_index]` and vice versa.
    /// Message tags and address-book slots use this, so irregular graphs
    /// (where the pairing is not index-symmetric) stay unambiguous. On
    /// grid graphs `peer_index == k` by construction.
    pub peer_index: usize,
}

/// One partner of the single-round irregular migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigratePeer {
    /// The peer's rank id.
    pub rank: usize,
    /// The peer's node id.
    pub node: usize,
    /// My index in the peer's own migrate list — the tag the peer expects
    /// my migrants under.
    pub tag_index: usize,
}

/// What the graph was built from: the uniform grid keeps its staged
/// face-sweep machinery; irregular graphs carry the owner lookup instead.
#[derive(Debug, Clone)]
enum Topology {
    Grid {
        config: PlanConfig,
        face_links: Box<[[GraphEdge; 2]; 3]>,
    },
    Irregular {
        rcb: Arc<RcbDecomposition>,
        migrate: Vec<MigratePeer>,
        /// Physical rank of each RCB part. Identity for full-width graphs;
        /// a shrunken recovery graph maps part `p` to the `p`-th survivor,
        /// so `owner_of` keeps answering in physical-rank space.
        rank_of: Vec<usize>,
    },
}

/// A rank's star-forest communication graph.
#[derive(Debug, Clone)]
pub struct CommGraph {
    /// This rank.
    pub me: usize,
    /// This rank's sub-box.
    pub sub: Box3,
    /// Ghost cutoff (force cutoff + skin).
    pub r_ghost: f64,
    /// Edges I receive ghost atoms along (and reduce forces back along).
    pub recv: Vec<GraphEdge>,
    /// Edges I broadcast my border atoms along. `send[k]` mirrors
    /// `recv[k]`: same peer rank, opposite periodic image.
    pub send: Vec<GraphEdge>,
    topology: Topology,
}

/// Grow a box by `r` on every face.
#[must_use]
pub fn expand(b: &Box3, r: f64) -> Box3 {
    Box3::new(
        [b.lo[0] - r, b.lo[1] - r, b.lo[2] - r],
        [b.hi[0] + r, b.hi[1] + r, b.hi[2] + r],
    )
}

/// Volume of the intersection of two boxes (0 when disjoint).
#[must_use]
pub fn overlap_volume(a: &Box3, b: &Box3) -> f64 {
    let mut v = 1.0;
    for d in 0..3 {
        let lo = a.lo[d].max(b.lo[d]);
        let hi = a.hi[d].min(b.hi[d]);
        if hi <= lo {
            return 0.0;
        }
        v *= hi - lo;
    }
    v
}

/// Do two boxes come strictly within `r` of each other?
fn within(a: &Box3, b: &Box3, r: f64) -> bool {
    (0..3).all(|d| a.lo[d] - r < b.hi[d] && b.lo[d] - r < a.hi[d])
}

/// The 27 periodic image vectors in a fixed lexicographic order.
fn images() -> impl Iterator<Item = [i32; 3]> {
    (-1..=1).flat_map(|sx| (-1..=1).flat_map(move |sy| (-1..=1).map(move |sz| [sx, sy, sz])))
}

/// Receive pairs of `rank` under an RCB decomposition: every
/// `(peer, image)` whose shifted box comes within `r_ghost` of mine,
/// ordered by `(peer, image)`. Pure function of the decomposition — both
/// sides of every edge recompute it to agree on pairing indices.
fn rcb_recv_pairs(rcb: &RcbDecomposition, rank: usize, r_ghost: f64) -> Vec<(usize, [i32; 3])> {
    let l = rcb.global.lengths();
    let mine = rcb.boxes[rank];
    let mut out = Vec::new();
    for (peer, pb) in rcb.boxes.iter().enumerate() {
        for img in images() {
            if peer == rank && img == [0, 0, 0] {
                continue;
            }
            let shifted = Box3 {
                lo: [
                    pb.lo[0] + f64::from(img[0]) * l[0],
                    pb.lo[1] + f64::from(img[1]) * l[1],
                    pb.lo[2] + f64::from(img[2]) * l[2],
                ],
                hi: [
                    pb.hi[0] + f64::from(img[0]) * l[0],
                    pb.hi[1] + f64::from(img[1]) * l[1],
                    pb.hi[2] + f64::from(img[2]) * l[2],
                ],
            };
            if within(&mine, &shifted, r_ghost) {
                out.push((peer, img));
            }
        }
    }
    out.sort_unstable_by_key(|&(p, img)| (p, img));
    out
}

/// Migrate partners of `rank`: the deduplicated rank set of its edges
/// (excluding itself — self-wraps are resolved locally), sorted.
fn rcb_migrate_ranks(rcb: &RcbDecomposition, rank: usize, r_ghost: f64) -> Vec<usize> {
    let mut ranks: Vec<usize> = rcb_recv_pairs(rcb, rank, r_ghost)
        .iter()
        .map(|&(p, _)| p)
        .filter(|&p| p != rank)
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    ranks
}

/// Migration peer lists for a decomposition swap. `needs[r]` is the set of
/// ranks that `r` must ship migrants to under the *new* decomposition; the
/// result is the symmetric closure (if r ships to p, both list each other,
/// so every pair posts matching sends and recvs even when one direction is
/// empty), sorted, with cross-consistent `tag_index` values — rank r's
/// entry for p records r's position in p's own list.
#[must_use]
pub fn rebalance_migrate_peers(needs: &[Vec<usize>], map: &RankMap) -> Vec<Vec<MigratePeer>> {
    let n = needs.len();
    let mut adj = vec![Vec::new(); n];
    for (r, dests) in needs.iter().enumerate() {
        for &d in dests {
            assert!(d < n, "migrant destination {d} outside the rank set");
            if d != r {
                adj[r].push(d);
                adj[d].push(r);
            }
        }
    }
    for peers in &mut adj {
        peers.sort_unstable();
        peers.dedup();
    }
    (0..n)
        .map(|r| {
            adj[r]
                .iter()
                .map(|&p| MigratePeer {
                    rank: p,
                    node: map.node_of(p),
                    tag_index: adj[p].binary_search(&r).unwrap_or(usize::MAX),
                })
                .collect()
        })
        .collect()
}

impl CommGraph {
    /// Re-express a uniform-grid [`CommPlan`] as a star forest. Edge
    /// order, pairing indices, shifts and size estimates all match the
    /// plan exactly, so engines driven through the graph are bit-identical
    /// to the plan-driven baseline.
    #[must_use]
    pub fn from_grid(plan: CommPlan) -> Self {
        let len = plan.sub.lengths();
        let edge = |l: &NeighborLink, k: usize| -> GraphEdge {
            // The peer's box translated adjacent to mine (my frame):
            // one sub-box length per offset step.
            let mut lo = [0.0; 3];
            let mut hi = [0.0; 3];
            for d in 0..3 {
                let t = f64::from(l.offset.d[d]) * len[d];
                lo[d] = plan.sub.lo[d] + t;
                hi[d] = plan.sub.hi[d] + t;
            }
            GraphEdge {
                offset: l.offset,
                rank: l.rank,
                node: l.node,
                hops: l.hops,
                shift: l.shift,
                region: Box3 { lo, hi },
                peer_index: k,
            }
        };
        let recv: Vec<GraphEdge> = plan
            .recv_from
            .iter()
            .enumerate()
            .map(|(k, l)| edge(l, k))
            .collect();
        let send: Vec<GraphEdge> = plan
            .send_to
            .iter()
            .enumerate()
            .map(|(k, l)| edge(l, k))
            .collect();
        let face_links = Box::new([
            [
                edge(&plan.face_links[0][0], 0),
                edge(&plan.face_links[0][1], 0),
            ],
            [
                edge(&plan.face_links[1][0], 0),
                edge(&plan.face_links[1][1], 0),
            ],
            [
                edge(&plan.face_links[2][0], 0),
                edge(&plan.face_links[2][1], 0),
            ],
        ]);
        CommGraph {
            me: plan.me,
            sub: plan.sub,
            r_ghost: plan.r_ghost,
            recv,
            send,
            topology: Topology::Grid {
                config: plan.config(),
                face_links,
            },
        }
    }

    /// Build the star forest of `rank` over an RCB decomposition: one edge
    /// per `(peer, periodic image)` whose box comes within `r_ghost` of
    /// mine. Pairing indices are cross-computed deterministically, so all
    /// ranks agree without any negotiation round.
    #[must_use]
    pub fn from_rcb(rank: usize, rcb: &Arc<RcbDecomposition>, map: &RankMap, r_ghost: f64) -> Self {
        let identity: Vec<usize> = (0..rcb.boxes.len()).collect();
        Self::from_rcb_mapped(rank, rcb, map, r_ghost, &identity)
    }

    /// [`CommGraph::from_rcb`] with an explicit part → physical-rank map:
    /// the graph of *part* `part` whose peers live at `rank_of[p]`. Edge
    /// lists, pairing indices, and migrate tags are all computed in part
    /// space (every survivor reconstructs the same lists, so they stay
    /// cross-consistent), then rank and node fields are remapped so the
    /// transport addresses real ranks. Shrinking recovery uses this to
    /// rebuild an N−1 decomposition over the survivors of a dead rank.
    ///
    /// `rank_of` must assign each part a distinct physical rank.
    #[must_use]
    pub fn from_rcb_mapped(
        part: usize,
        rcb: &Arc<RcbDecomposition>,
        map: &RankMap,
        r_ghost: f64,
        rank_of: &[usize],
    ) -> Self {
        assert_eq!(
            rank_of.len(),
            rcb.boxes.len(),
            "rank_of must cover every RCB part"
        );
        let rank = part;
        let l = rcb.global.lengths();
        let sub = rcb.boxes[rank];
        assert!(
            (0..3).all(|d| r_ghost < l[d]),
            "ghost cutoff must stay below the global box"
        );
        let pairs = rcb_recv_pairs(rcb, rank, r_ghost);
        let shift_of = |img: [i32; 3]| -> [f64; 3] {
            [
                f64::from(img[0]) * l[0],
                f64::from(img[1]) * l[1],
                f64::from(img[2]) * l[2],
            ]
        };
        let translated = |peer: usize, img: [i32; 3]| -> Box3 {
            let s = shift_of(img);
            let pb = rcb.boxes[peer];
            Box3 {
                lo: [pb.lo[0] + s[0], pb.lo[1] + s[1], pb.lo[2] + s[2]],
                hi: [pb.hi[0] + s[0], pb.hi[1] + s[1], pb.hi[2] + s[2]],
            }
        };
        let index_in = |peer: usize, target: (usize, [i32; 3])| -> usize {
            rcb_recv_pairs(rcb, peer, r_ghost)
                .iter()
                .position(|&p| p == target)
                .unwrap_or_else(|| {
                    // Mirror-edge existence is a theorem of the symmetric
                    // `within` test; failure means the decomposition is
                    // inconsistent across ranks.
                    panic!("rank {peer} is missing the mirror edge {target:?} of rank {rank}")
                })
        };
        let mut recv = Vec::with_capacity(pairs.len());
        let mut send = Vec::with_capacity(pairs.len());
        for &(peer, img) in &pairs {
            let node = map.node_of(rank_of[peer]);
            let hops = map.hops(rank_of[rank], rank_of[peer]);
            let neg = [-img[0], -img[1], -img[2]];
            // recv[k]: the peer's atoms arrive shifted by +img·L into my
            // frame. Mirrors the peer's send edge (me, img), which sits
            // where (me, -img) sits in the peer's recv list.
            recv.push(GraphEdge {
                offset: NeighborOffset { d: [0; 3] },
                rank: rank_of[peer],
                node,
                hops,
                shift: shift_of(img),
                region: translated(peer, img),
                peer_index: index_in(peer, (rank, neg)),
            });
            // send[k]: I ship my atoms shifted by -img·L toward the peer.
            // Mirrors the peer's recv edge (me, -img).
            send.push(GraphEdge {
                offset: NeighborOffset { d: [0; 3] },
                rank: rank_of[peer],
                node,
                hops,
                shift: shift_of(neg),
                region: translated(peer, img),
                peer_index: index_in(peer, (rank, neg)),
            });
        }
        let migrate = rcb_migrate_ranks(rcb, rank, r_ghost)
            .into_iter()
            .map(|peer| MigratePeer {
                rank: rank_of[peer],
                node: map.node_of(rank_of[peer]),
                tag_index: rcb_migrate_ranks(rcb, peer, r_ghost)
                    .iter()
                    .position(|&p| p == rank)
                    .unwrap_or(usize::MAX),
            })
            .collect();
        CommGraph {
            me: rank_of[rank],
            sub,
            r_ghost,
            recv,
            send,
            topology: Topology::Irregular {
                rcb: rcb.clone(),
                migrate,
                rank_of: rank_of.to_vec(),
            },
        }
    }

    /// Replace the migrate-peer list (irregular graphs only). A mid-run
    /// rebalance routes its one-round migration over an explicitly
    /// computed peer set — after a decomposition swap an atom's new owner
    /// can lie far beyond the new graph's halo-derived peers — then
    /// restores the halo-derived list for steady-state exchanges.
    #[must_use]
    pub fn with_migrate_peers(mut self, peers: Vec<MigratePeer>) -> Self {
        match &mut self.topology {
            Topology::Grid { .. } => panic!("migrate peers exist only on irregular graphs"),
            Topology::Irregular { migrate, .. } => *migrate = peers,
        }
        self
    }

    /// True for graphs built from the uniform grid.
    #[must_use]
    pub fn is_grid(&self) -> bool {
        matches!(self.topology, Topology::Grid { .. })
    }

    /// The grid plan configuration, if this is a grid graph.
    #[must_use]
    pub fn config(&self) -> Option<PlanConfig> {
        match &self.topology {
            Topology::Grid { config, .. } => Some(*config),
            Topology::Irregular { .. } => None,
        }
    }

    /// Number of halo edges per direction.
    #[must_use]
    pub fn neighbor_count(&self) -> usize {
        self.recv.len()
    }

    /// The grid face neighbor toward `dim`/`dir` (staged migration only
    /// runs on grid graphs).
    #[must_use]
    pub fn face_link(&self, dim: usize, dir: usize) -> &GraphEdge {
        match &self.topology {
            Topology::Grid { face_links, .. } => &face_links[dim][dir],
            Topology::Irregular { .. } => {
                panic!("face links exist only on grid graphs; migrate via migrate_peers()")
            }
        }
    }

    /// Post/complete rounds of the migrate primitive: the grid keeps
    /// LAMMPS's three staged face sweeps; irregular graphs resolve owners
    /// directly and migrate in one round.
    #[must_use]
    pub fn migrate_rounds(&self) -> usize {
        if self.is_grid() {
            3
        } else {
            1
        }
    }

    /// Partners of the single-round irregular migration (empty on grid
    /// graphs, which sweep faces instead).
    #[must_use]
    pub fn migrate_peers(&self) -> &[MigratePeer] {
        match &self.topology {
            Topology::Grid { .. } => &[],
            Topology::Irregular { migrate, .. } => migrate,
        }
    }

    /// Which rank owns a global position (irregular graphs; the grid
    /// resolves owners through its staged sweeps instead). Answers in
    /// physical-rank space even on shrunken recovery graphs.
    #[must_use]
    pub fn owner_of(&self, x: &[f64; 3]) -> usize {
        match &self.topology {
            Topology::Grid { .. } => {
                panic!("owner_of is only defined on irregular graphs")
            }
            Topology::Irregular { rcb, rank_of, .. } => rank_of[rcb.owner_of(x)],
        }
    }

    /// The RCB decomposition behind an irregular graph (checkpointing
    /// captures it so a restore can rebuild identical graphs).
    #[must_use]
    pub fn rcb(&self) -> Option<&Arc<RcbDecomposition>> {
        match &self.topology {
            Topology::Grid { .. } => None,
            Topology::Irregular { rcb, .. } => Some(rcb),
        }
    }

    /// The global box (irregular graphs carry it for migration wrapping).
    #[must_use]
    pub fn global_box(&self) -> &Box3 {
        match &self.topology {
            Topology::Grid { .. } => panic!("grid graphs do not carry the global box"),
            Topology::Irregular { rcb, .. } => &rcb.global,
        }
    }

    /// Build the border-atom selector for this graph's send edges: the
    /// O(1) bin table (or exact slab test) on grid graphs, the per-edge
    /// expanded-region test on irregular graphs.
    #[must_use]
    pub fn selector(&self) -> SendSelector {
        match &self.topology {
            Topology::Grid { .. } => {
                let offsets: Vec<_> = self.send.iter().map(|e| e.offset).collect();
                SendSelector::Grid(BorderBins::new(self.sub, self.r_ghost, &offsets))
            }
            Topology::Irregular { .. } => SendSelector::Regions(
                self.send
                    .iter()
                    .map(|e| expand(&e.region, self.r_ghost))
                    .collect(),
            ),
        }
    }

    /// Expected ghost-slab volume toward a grid `offset` (Table 1's
    /// msg_size column; grid graphs only — same formula as the plan's).
    #[must_use]
    pub fn slab_volume(&self, offset: NeighborOffset) -> f64 {
        let a = self.sub.lengths();
        let r = self.r_ghost;
        let mut v = 1.0;
        for d in 0..3 {
            let extent = match offset.d[d].unsigned_abs() {
                0 => a[d],
                1 => r.min(a[d]),
                s => (r - (f64::from(s) - 1.0) * a[d]).clamp(0.0, a[d]),
            };
            v *= extent;
        }
        v
    }

    /// Estimated *maximum* atoms moved along edge `k` of `edges` at the
    /// given number density (§3.4 buffer pre-sizing). Grid graphs use the
    /// offset slab formula (bit-identical to the plan's estimate);
    /// irregular graphs use the expanded-region overlap.
    #[must_use]
    pub fn max_atoms_estimate(&self, offset: NeighborOffset, density: f64) -> usize {
        (2.0 * density * self.slab_volume(offset)).ceil() as usize + 8
    }

    /// Total expected ghost atoms received per exchange.
    #[must_use]
    pub fn total_ghost_estimate(&self, density: f64) -> f64 {
        match &self.topology {
            Topology::Grid { .. } => self
                .recv
                .iter()
                .map(|e| density * self.slab_volume(e.offset))
                .sum(),
            Topology::Irregular { .. } => self
                .recv
                .iter()
                .map(|e| density * overlap_volume(&expand(&self.sub, self.r_ghost), &e.region))
                .sum(),
        }
    }

    /// A [`FaultRule`] addressing one send edge of this graph: faults keyed
    /// this way follow the *edge* (my rank tag → the peer's node) rather
    /// than any grid offset, so fault plans survive decomposition changes.
    #[must_use]
    pub fn edge_fault_rule(&self, k: usize, kind: FaultKind) -> FaultRule {
        FaultRule {
            step: None,
            op: None,
            src: Some(self.me as u32),
            dst: Some(self.send[k].node as u32),
            tni: None,
            kind,
        }
    }
}

/// Which send edges need a given atom: the per-graph strategy behind
/// border packing.
#[derive(Debug, Clone)]
pub enum SendSelector {
    /// Grid graphs: the §3.5.2 bin table / exact slab test.
    Grid(BorderBins),
    /// Irregular graphs: one expanded peer region per send edge, already
    /// translated into my frame.
    Regions(Vec<Box3>),
}

impl SendSelector {
    /// Visit the indices of send edges that need an atom at `x`.
    #[inline]
    pub fn for_each_target(&self, x: &[f64; 3], mut f: impl FnMut(u16)) {
        match self {
            SendSelector::Grid(bins) => bins.for_each_target(x, f),
            SendSelector::Regions(regions) => {
                for (k, r) in regions.iter().enumerate() {
                    if r.contains(x) {
                        f(k as u16);
                    }
                }
            }
        }
    }

    /// Collected targets of an atom (convenience for tests).
    #[must_use]
    pub fn targets_of(&self, x: &[f64; 3]) -> Vec<u16> {
        let mut out = Vec::new();
        self.for_each_target(x, |k| out.push(k));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo_map::Placement;
    use tofumd_tofu::CellGrid;

    fn grid_setup() -> (RankMap, Box3) {
        let grid = CellGrid::from_node_mesh([8, 12, 8]).unwrap();
        let map = RankMap::new(grid, Placement::TopoAware);
        let rg = map.rank_grid;
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        (map, global)
    }

    fn grid_graph(rank: usize, cfg: PlanConfig) -> CommGraph {
        let (map, global) = grid_setup();
        CommGraph::from_grid(CommPlan::build(rank, &map, &global, 2.8, cfg))
    }

    #[test]
    fn grid_graph_preserves_plan_edges_exactly() {
        let (map, global) = grid_setup();
        let plan = CommPlan::build(7, &map, &global, 2.8, PlanConfig::NEWTON);
        let g = CommGraph::from_grid(plan.clone());
        assert_eq!(g.me, plan.me);
        assert_eq!(g.sub, plan.sub);
        assert_eq!(g.r_ghost, plan.r_ghost);
        assert_eq!(g.recv.len(), plan.recv_from.len());
        for (k, (e, l)) in g.recv.iter().zip(&plan.recv_from).enumerate() {
            assert_eq!(
                (e.offset, e.rank, e.node, e.hops),
                (l.offset, l.rank, l.node, l.hops)
            );
            assert_eq!(e.shift, l.shift);
            assert_eq!(e.peer_index, k, "grid pairing must stay index-symmetric");
        }
        for (k, (e, l)) in g.send.iter().zip(&plan.send_to).enumerate() {
            assert_eq!((e.offset, e.rank), (l.offset, l.rank));
            assert_eq!(e.peer_index, k);
        }
        for dim in 0..3 {
            for dir in 0..2 {
                assert_eq!(g.face_link(dim, dir).rank, plan.face_links[dim][dir].rank);
                assert_eq!(g.face_link(dim, dir).shift, plan.face_links[dim][dir].shift);
            }
        }
        assert_eq!(
            g.max_atoms_estimate(plan.recv_from[0].offset, 0.8442),
            plan.max_atoms_estimate(plan.recv_from[0].offset, 0.8442)
        );
        assert!((g.total_ghost_estimate(0.8442) - plan.total_ghost_estimate(0.8442)).abs() < 1e-12);
    }

    #[test]
    fn shell_instances_have_paper_neighbor_counts() {
        // 13/26/62/124: the four regimes of the paper as graph instances.
        for (shells, half, expect) in [
            (1, true, 13),
            (1, false, 26),
            (2, true, 62),
            (2, false, 124),
        ] {
            let g = grid_graph(0, PlanConfig { shells, half });
            assert_eq!(g.neighbor_count(), expect);
            assert_eq!(g.send.len(), expect);
            assert!(g.is_grid());
            assert_eq!(g.migrate_rounds(), 3);
            assert!(g.migrate_peers().is_empty());
        }
    }

    #[test]
    fn grid_send_and_recv_edges_are_opposite() {
        let g = grid_graph(5, PlanConfig::NEWTON);
        for (r, s) in g.recv.iter().zip(&g.send) {
            assert_eq!(r.offset.opposite(), s.offset);
            assert_eq!(
                r.rank,
                g_peer_of(&g, s),
                "mirror edges share a peer only via offsets"
            );
        }
    }

    /// The rank a send edge's mirror recv edge points at (same index).
    fn g_peer_of(g: &CommGraph, s: &GraphEdge) -> usize {
        g.recv[g.send.iter().position(|e| std::ptr::eq(e, s)).unwrap()].rank
    }

    #[test]
    fn grid_regions_sit_adjacent_per_offset() {
        let g = grid_graph(0, PlanConfig::FULL);
        let len = g.sub.lengths();
        for e in &g.recv {
            for d in 0..3 {
                let t = f64::from(e.offset.d[d]) * len[d];
                assert!((e.region.lo[d] - (g.sub.lo[d] + t)).abs() < 1e-9);
            }
        }
    }

    fn rcb_fixture(nranks: usize) -> (Arc<RcbDecomposition>, RankMap, Vec<[f64; 3]>) {
        let grid = CellGrid::new([1, 1, 1]);
        let map = RankMap::new(grid, Placement::TopoAware);
        assert!(nranks <= map.nranks());
        let global = Box3::from_lengths([20.0, 16.0, 12.0]);
        // Deterministic skewed scatter.
        let l = global.lengths();
        let pts: Vec<[f64; 3]> = (0..800)
            .filter_map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let u = |s: u32| ((h >> s) & 0xffff) as f64 / 65536.0;
                let p = [u(0) * l[0], u(16) * l[1], u(32) * l[2]];
                // Ramp: denser at low x.
                if u(48) < 1.0 - 0.8 * (p[0] / l[0]) {
                    Some(p)
                } else {
                    None
                }
            })
            .collect();
        (
            Arc::new(RcbDecomposition::build(nranks, &pts, &global)),
            map,
            pts,
        )
    }

    #[test]
    fn rcb_edges_mirror_at_equal_indices() {
        let (rcb, map, _) = rcb_fixture(8);
        for rank in 0..8 {
            let g = CommGraph::from_rcb(rank, &rcb, &map, 2.5);
            assert!(!g.is_grid());
            assert_eq!(g.recv.len(), g.send.len());
            for (r, s) in g.recv.iter().zip(&g.send) {
                assert_eq!(r.rank, s.rank);
                for d in 0..3 {
                    assert!((r.shift[d] + s.shift[d]).abs() < 1e-12, "shifts negate");
                }
            }
        }
    }

    #[test]
    fn rcb_graph_is_globally_consistent() {
        // My send[k] must be the peer's recv[send[k].peer_index], with the
        // peer agreeing on rank, shift and pairing back to me.
        let (rcb, map, _) = rcb_fixture(8);
        let graphs: Vec<CommGraph> = (0..8)
            .map(|r| CommGraph::from_rcb(r, &rcb, &map, 2.5))
            .collect();
        for g in &graphs {
            for (k, s) in g.send.iter().enumerate() {
                let peer = &graphs[s.rank];
                let mirror = &peer.recv[s.peer_index];
                assert_eq!(mirror.rank, g.me, "peer's recv edge must point back");
                assert_eq!(mirror.peer_index, k, "pairing is an involution");
                for d in 0..3 {
                    // The shift I apply sending is the shift the peer
                    // records as applied by its sender.
                    assert!((mirror.shift[d] - s.shift[d]).abs() < 1e-12);
                }
            }
            for (k, r) in g.recv.iter().enumerate() {
                let peer = &graphs[r.rank];
                let mirror = &peer.send[r.peer_index];
                assert_eq!(mirror.rank, g.me);
                assert_eq!(mirror.peer_index, k);
            }
        }
    }

    #[test]
    fn rcb_migrate_tags_are_consistent() {
        let (rcb, map, _) = rcb_fixture(6);
        let graphs: Vec<CommGraph> = (0..6)
            .map(|r| CommGraph::from_rcb(r, &rcb, &map, 2.5))
            .collect();
        for g in &graphs {
            assert_eq!(g.migrate_rounds(), 1);
            for p in g.migrate_peers() {
                let back = graphs[p.rank].migrate_peers();
                assert_eq!(back[p.tag_index].rank, g.me, "peer expects me at tag_index");
            }
        }
    }

    #[test]
    fn mapped_rcb_graphs_address_survivors_and_stay_consistent() {
        // Rank 2 of 6 died: five survivor parts map onto physical ranks
        // {0, 1, 3, 4, 5}. Edges, pairing, migrate tags, and owner lookup
        // must all answer in physical-rank space while staying mutually
        // consistent across the survivor set.
        let (_, map, pts) = rcb_fixture(6);
        let global = Box3::from_lengths([20.0, 16.0, 12.0]);
        let rcb = Arc::new(RcbDecomposition::build(5, &pts, &global));
        let rank_of: Vec<usize> = vec![0, 1, 3, 4, 5];
        let graphs: Vec<CommGraph> = (0..5)
            .map(|p| CommGraph::from_rcb_mapped(p, &rcb, &map, 2.5, &rank_of))
            .collect();
        let part_of = |rank: usize| rank_of.iter().position(|&r| r == rank).unwrap();
        for (part, g) in graphs.iter().enumerate() {
            assert_eq!(g.me, rank_of[part]);
            assert!(g.rcb().is_some());
            for (k, s) in g.send.iter().enumerate() {
                assert_ne!(s.rank, 2, "dead rank must never be addressed");
                assert_eq!(s.node, map.node_of(s.rank));
                let peer = &graphs[part_of(s.rank)];
                let mirror = &peer.recv[s.peer_index];
                assert_eq!(mirror.rank, g.me, "peer's recv edge must point back");
                assert_eq!(mirror.peer_index, k, "pairing is an involution");
            }
            for p in g.migrate_peers() {
                assert_ne!(p.rank, 2);
                let back = graphs[part_of(p.rank)].migrate_peers();
                assert_eq!(back[p.tag_index].rank, g.me, "peer expects me at tag_index");
            }
        }
        // Owner lookup answers in physical-rank space.
        for p in pts.iter().take(64) {
            let owner = graphs[0].owner_of(p);
            assert_ne!(owner, 2);
            assert_eq!(owner, rank_of[rcb.owner_of(p)]);
        }
        // Identity mapping reproduces from_rcb exactly.
        let plain = CommGraph::from_rcb(3, &rcb, &map, 2.5);
        let ident: Vec<usize> = (0..5).collect();
        let mapped = CommGraph::from_rcb_mapped(3, &rcb, &map, 2.5, &ident);
        assert_eq!(plain.me, mapped.me);
        assert_eq!(plain.recv, mapped.recv);
        assert_eq!(plain.send, mapped.send);
        assert_eq!(plain.migrate_peers(), mapped.migrate_peers());
    }

    #[test]
    fn rebalance_peer_lists_are_symmetric_and_tag_consistent() {
        let (_, map, _) = rcb_fixture(6);
        // Asymmetric needs: 0 ships to 3, 3 ships to nobody, 5 ships to 0
        // and 1; rank 2 ships only to itself (resolved locally).
        let needs = vec![vec![3], vec![], vec![2], vec![], vec![], vec![0, 1]];
        let lists = rebalance_migrate_peers(&needs, &map);
        assert_eq!(lists.len(), 6);
        // Symmetric closure: 3 lists 0 even though it ships nothing.
        assert_eq!(lists[3].iter().map(|p| p.rank).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            lists[0].iter().map(|p| p.rank).collect::<Vec<_>>(),
            vec![3, 5]
        );
        // Self-needs never become peers.
        assert!(lists[2].is_empty());
        assert!(lists[4].is_empty());
        for (r, list) in lists.iter().enumerate() {
            for p in list {
                assert_eq!(p.node, map.node_of(p.rank));
                let back = &lists[p.rank];
                assert_eq!(back[p.tag_index].rank, r, "peer expects me at tag_index");
            }
        }
    }

    #[test]
    fn with_migrate_peers_swaps_the_list_and_keeps_edges() {
        let (rcb, map, _) = rcb_fixture(4);
        let g = CommGraph::from_rcb(1, &rcb, &map, 2.5);
        let swapped = g.clone().with_migrate_peers(vec![MigratePeer {
            rank: 3,
            node: map.node_of(3),
            tag_index: 0,
        }]);
        assert_eq!(swapped.migrate_peers().len(), 1);
        assert_eq!(swapped.migrate_peers()[0].rank, 3);
        assert_eq!(swapped.recv, g.recv, "halo edges untouched by the swap");
        assert_eq!(swapped.send, g.send);
        // Restoring is just another swap back to the halo-derived list.
        let restored = swapped.with_migrate_peers(g.migrate_peers().to_vec());
        assert_eq!(restored.migrate_peers(), g.migrate_peers());
    }

    #[test]
    #[should_panic(expected = "irregular")]
    fn grid_graphs_reject_migrate_peer_swaps() {
        let g = grid_graph(0, PlanConfig::NEWTON);
        let _ = g.with_migrate_peers(Vec::new());
    }

    #[test]
    fn rcb_selector_matches_brute_force_membership() {
        // An atom must be selected for edge k exactly when it lies within
        // r_ghost of the peer's (translated) box.
        let (rcb, map, pts) = rcb_fixture(8);
        let r = 2.5;
        for rank in [0, 3, 7] {
            let g = CommGraph::from_rcb(rank, &rcb, &map, r);
            let sel = g.selector();
            for p in pts.iter().filter(|p| g.sub.contains(p)) {
                let want: Vec<u16> = g
                    .send
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| expand(&e.region, r).contains(p))
                    .map(|(k, _)| k as u16)
                    .collect();
                assert_eq!(sel.targets_of(p), want, "atom {p:?} on rank {rank}");
            }
        }
    }

    #[test]
    fn rcb_ghost_regions_cover_the_cutoff_sphere() {
        // Union coverage: every position within r of my box but outside it
        // belongs to some recv edge's arrival region (no lost ghosts).
        let (rcb, map, pts) = rcb_fixture(8);
        let r = 2.5;
        let g = CommGraph::from_rcb(2, &rcb, &map, r);
        let exp = expand(&g.sub, r);
        let global = rcb.global;
        for p in &pts {
            // Try all images of p that land in my expanded shell.
            let l = global.lengths();
            for img in images() {
                let q = [
                    p[0] + f64::from(img[0]) * l[0],
                    p[1] + f64::from(img[1]) * l[1],
                    p[2] + f64::from(img[2]) * l[2],
                ];
                if !exp.contains(&q) || g.sub.contains(&q) {
                    continue;
                }
                let covered = g.recv.iter().any(|e| e.region.contains(&q));
                assert!(covered, "ghost at {q:?} (image {img:?}) uncovered");
            }
        }
    }

    #[test]
    fn edge_fault_rules_address_edges_not_offsets() {
        let (rcb, map, _) = rcb_fixture(4);
        let g = CommGraph::from_rcb(1, &rcb, &map, 2.5);
        let rule = g.edge_fault_rule(0, FaultKind::Drop { times: 1 });
        assert_eq!(rule.src, Some(1));
        assert_eq!(rule.dst, Some(g.send[0].node as u32));
        let g2 = grid_graph(1, PlanConfig::NEWTON);
        let rule2 = g2.edge_fault_rule(3, FaultKind::Duplicate);
        assert_eq!(rule2.dst, Some(g2.send[3].node as u32));
    }

    #[test]
    fn overlap_volume_basics() {
        let a = Box3::from_lengths([2.0; 3]);
        let b = Box3::new([1.0, 0.0, 0.0], [3.0, 2.0, 2.0]);
        assert!((overlap_volume(&a, &b) - 4.0).abs() < 1e-12);
        let c = Box3::new([5.0; 3], [6.0; 3]);
        assert_eq!(overlap_volume(&a, &c), 0.0);
    }
}
