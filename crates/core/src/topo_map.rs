//! Rank-to-node placement (§3.5.3 "topo map").
//!
//! The 3D domain decomposition is mapped onto the folded TofuD node mesh so
//! grid-adjacent MPI ranks land on physically adjacent nodes. With 4 ranks
//! per node, the rank grid is the node mesh refined by (1, 2, 2): the four
//! sub-boxes sharing a node form a 1x2x2 block, keeping every ghost
//! exchange within 0 hops (same node) or a small constant. The ablation
//! alternative is a shuffled placement that destroys locality.

use serde::{Deserialize, Serialize};
use tofumd_tofu::CellGrid;

/// Refinement of the node mesh into the rank grid: 4 ranks/node as a
/// 1 x 2 x 2 block (§3.2 launches 4 ranks per node, one per CMG).
pub const RANKS_PER_NODE_SPLIT: [u32; 3] = [1, 2, 2];

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Topology-aware: decomposition grid == refined node mesh (the
    /// paper's topo-map optimization).
    TopoAware,
    /// Locality-destroying deterministic shuffle (ablation baseline).
    Shuffled {
        /// Shuffle seed.
        seed: u64,
    },
}

/// Mapping between decomposition ranks and (node, slot) pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankMap {
    grid: CellGrid,
    /// Rank grid dimensions (node mesh x split).
    pub rank_grid: [u32; 3],
    /// rank -> node id.
    node_of_rank: Vec<usize>,
    placement: Placement,
}

impl RankMap {
    /// Build the map for a cell grid and placement policy.
    #[must_use]
    pub fn new(grid: CellGrid, placement: Placement) -> Self {
        let mesh = grid.node_mesh();
        let rank_grid = [
            mesh[0] * RANKS_PER_NODE_SPLIT[0],
            mesh[1] * RANKS_PER_NODE_SPLIT[1],
            mesh[2] * RANKS_PER_NODE_SPLIT[2],
        ];
        let nranks = (rank_grid[0] * rank_grid[1] * rank_grid[2]) as usize;
        let mut node_of_rank = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let c = Self::coord_of(rank_grid, r);
            let m = [
                c[0] / RANKS_PER_NODE_SPLIT[0],
                c[1] / RANKS_PER_NODE_SPLIT[1],
                c[2] / RANKS_PER_NODE_SPLIT[2],
            ];
            node_of_rank.push(grid.node_id(m));
        }
        if let Placement::Shuffled { seed } = placement {
            // Fisher-Yates with a splitmix-style generator: deterministic,
            // dependency-free, uniform enough to destroy locality.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in (1..node_of_rank.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                node_of_rank.swap(i, j);
            }
        }
        RankMap {
            grid,
            rank_grid,
            node_of_rank,
            placement,
        }
    }

    fn coord_of(grid: [u32; 3], rank: usize) -> [u32; 3] {
        let r = rank as u32;
        [
            r % grid[0],
            (r / grid[0]) % grid[1],
            r / (grid[0] * grid[1]),
        ]
    }

    /// Total rank count (4 x node count).
    #[must_use]
    pub fn nranks(&self) -> usize {
        self.node_of_rank.len()
    }

    /// Decomposition-grid coordinate of a rank (x fastest).
    #[must_use]
    pub fn rank_coord(&self, rank: usize) -> [u32; 3] {
        Self::coord_of(self.rank_grid, rank)
    }

    /// Rank at a (wrapping) grid coordinate.
    #[must_use]
    pub fn rank_at(&self, coord: [i64; 3]) -> usize {
        let mut c = [0u32; 3];
        for d in 0..3 {
            c[d] = coord[d].rem_euclid(i64::from(self.rank_grid[d])) as u32;
        }
        (c[0] + self.rank_grid[0] * (c[1] + self.rank_grid[1] * c[2])) as usize
    }

    /// Node hosting a rank.
    #[must_use]
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of_rank[rank]
    }

    /// Network hops between two ranks.
    #[must_use]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        self.grid.hops(
            self.grid.mesh_of_id(self.node_of_rank[a]),
            self.grid.mesh_of_id(self.node_of_rank[b]),
        )
    }

    /// The placement in force.
    #[must_use]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Mean hop distance from a rank to its 26 grid neighbors — the
    /// quantity the topo map minimizes (ablation observable).
    #[must_use]
    pub fn mean_neighbor_hops(&self, rank: usize) -> f64 {
        let c = self.rank_coord(rank);
        let mut sum = 0u32;
        let mut n = 0u32;
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let nb = self.rank_at([
                        i64::from(c[0]) + dx,
                        i64::from(c[1]) + dy,
                        i64::from(c[2]) + dz,
                    ]);
                    sum += self.hops(rank, nb);
                    n += 1;
                }
            }
        }
        f64::from(sum) / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_768() -> CellGrid {
        CellGrid::from_node_mesh([8, 12, 8]).unwrap()
    }

    #[test]
    fn rank_count_is_4x_nodes() {
        let m = RankMap::new(grid_768(), Placement::TopoAware);
        assert_eq!(m.nranks(), 4 * 768);
        assert_eq!(m.rank_grid, [8, 24, 16]);
    }

    #[test]
    fn four_ranks_share_each_node() {
        let m = RankMap::new(grid_768(), Placement::TopoAware);
        let mut counts = vec![0u32; 768];
        for r in 0..m.nranks() {
            counts[m.node_of(r)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn topo_aware_neighbors_are_close() {
        let m = RankMap::new(grid_768(), Placement::TopoAware);
        // A rank's grid neighbors are at most 3 hops away (one mesh step
        // per dimension).
        let hops = m.mean_neighbor_hops(0);
        assert!(hops <= 2.0, "topo-aware mean neighbor hops = {hops}");
    }

    #[test]
    fn shuffled_placement_inflates_hops() {
        let topo = RankMap::new(grid_768(), Placement::TopoAware);
        let rand = RankMap::new(grid_768(), Placement::Shuffled { seed: 1 });
        let h_topo = topo.mean_neighbor_hops(100);
        let h_rand = rand.mean_neighbor_hops(100);
        assert!(
            h_rand > 2.0 * h_topo,
            "shuffle must inflate hops: {h_rand} vs {h_topo}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let m = RankMap::new(grid_768(), Placement::Shuffled { seed: 7 });
        let mut counts = vec![0u32; 768];
        for r in 0..m.nranks() {
            counts[m.node_of(r)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "each node still hosts 4");
    }

    #[test]
    fn rank_at_wraps() {
        let m = RankMap::new(grid_768(), Placement::TopoAware);
        assert_eq!(m.rank_at([-1, 0, 0]), m.rank_at([7, 0, 0]));
        assert_eq!(m.rank_at([8, 24, 16]), m.rank_at([0, 0, 0]));
    }

    #[test]
    fn same_node_ranks_have_zero_hops() {
        let m = RankMap::new(grid_768(), Placement::TopoAware);
        // Ranks (0,0,0) and (0,1,0) share a node under the 1x2x2 split.
        let a = m.rank_at([0, 0, 0]);
        let b = m.rank_at([0, 1, 0]);
        assert_eq!(m.node_of(a), m.node_of(b));
        assert_eq!(m.hops(a, b), 0);
    }
}
