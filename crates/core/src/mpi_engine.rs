//! Ghost engines over the MPI transport: the LAMMPS baseline 3-stage
//! pattern ("ref") and the naive MPI p2p pattern that §3.2 shows is
//! *slower* than the baseline because of MPI's per-message software cost.

use crate::engine::{GhostEngine, Op, OpStats, RankState};
use crate::p2p::P2pGhosts;
use crate::plan::NeighborLink;
use crate::sf::SendSelector;
use crate::three_stage::{round_to_sweep, staged_links, StagedGhosts};
use crate::topo_map::RankMap;
use crate::wire;
use std::sync::Arc;
use tofumd_md::region::Box3;
use tofumd_mpi::Communicator;
use tofumd_tofu::TofuError;

fn op_base(op: Op) -> u32 {
    match op {
        Op::Border => 1,
        Op::Forward => 2,
        Op::Reverse => 3,
        Op::ForwardScalar => 4,
        Op::ReverseScalar => 5,
        Op::Exchange => 6,
    }
}

/// Tag for a staged (3-stage) message: op, sweep dimension, direction sent.
fn staged_tag(op: Op, dim: usize, dir: usize) -> u32 {
    op_base(op) * 64 + (dim as u32) * 2 + dir as u32
}

/// Tag for a p2p message: op and the *receiver's* edge index (a sender
/// tags with its edge's `peer_index`; on grid graphs the two coincide).
fn p2p_tag(op: Op, link: usize) -> u32 {
    op_base(op) * 1024 + link as u32
}

/// The LAMMPS default: 6-message staged exchange over MPI.
pub struct MpiThreeStage {
    comm: Arc<Communicator>,
    me: usize,
    links: [[NeighborLink; 2]; 3],
    ghosts: StagedGhosts,
    stats: OpStats,
    /// Swaps per dimension (the plan's shell count; 1 in the common case).
    shells: usize,
}

impl MpiThreeStage {
    /// Build the engine for one rank. `shells` is the plan's shell count:
    /// each dimension performs that many successive swaps (Fig. 15's
    /// long-cutoff regime needs more than one).
    #[must_use]
    pub fn new(
        comm: Arc<Communicator>,
        map: &RankMap,
        rank: usize,
        global: &Box3,
        shells: usize,
    ) -> Self {
        assert!(shells >= 1);
        MpiThreeStage {
            comm,
            me: rank,
            links: staged_links(map, rank, global),
            ghosts: StagedGhosts::default(),
            stats: OpStats::default(),
            shells,
        }
    }

    fn send_both(
        &mut self,
        st: &mut RankState,
        op: Op,
        round: usize,
        dim: usize,
        payloads: &[Vec<f64>; 2],
    ) {
        let p = *self.comm.net().params();
        let bytes: usize = payloads.iter().map(|v| v.len() * 8).sum();
        let mut now = st.clock;
        now += p.pack_cost(bytes);
        for (dir, payload) in payloads.iter().enumerate() {
            self.stats.count(op, round, payload.len() * 8);
            self.stats.copied(op, round, payload.len() * 8);
            self.comm.send(
                self.me,
                self.links[dim][dir].rank,
                staged_tag(op, dim, dir),
                &wire::encode_f64s(payload),
                &mut now,
            );
        }
        let dt = now - st.clock;
        st.charge(dt, op);
    }

    /// Receive the two sweep-`dim` messages: from `links[dim][dir]`, tagged
    /// by the sender with direction `1 - dir`. A shortfall (dead peer /
    /// protocol bug) surfaces as the typed error; the clock is still
    /// charged for the messages that did arrive.
    fn recv_both(
        &self,
        st: &mut RankState,
        op: Op,
        dim: usize,
    ) -> Result<[Vec<f64>; 2], TofuError> {
        let mut out = [Vec::new(), Vec::new()];
        let mut now = st.clock;
        for dir in 0..2 {
            let r = self.comm.try_recv(
                self.me,
                self.links[dim][dir].rank,
                staged_tag(op, dim, 1 - dir),
                now,
            );
            let m = match r {
                Ok(m) => m,
                Err(e) => {
                    st.charge(now - st.clock, op);
                    return Err(e);
                }
            };
            now = m.now;
            out[dir] = wire::decode_f64s(&m.data);
        }
        let dt = now - st.clock;
        st.charge(dt, op);
        Ok(out)
    }
}

impl GhostEngine for MpiThreeStage {
    fn name(&self) -> &'static str {
        "mpi-3stage"
    }

    fn rounds(&self, op: Op) -> usize {
        // Every ghost op sweeps the three dimensions `shells` times.
        // Whether Reverse runs at all (Newton on/off) is the driver's
        // decision, not the engine's. Migration stays one swap per
        // dimension (atoms move less than a sub-box between rebuilds).
        if op == Op::Exchange {
            3
        } else {
            3 * self.shells
        }
    }

    fn barrier_between_rounds(&self) -> bool {
        true
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn post(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Border => {
                if round == 0 {
                    self.ghosts.reset(st, self.shells);
                }
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.ghosts.pack_border(st, &self.links, dim, swap);
                self.send_both(st, op, round, dim, &payloads);
            }
            Op::Forward => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = [
                    self.ghosts.pack_forward(st, &self.links, dim, swap, 0),
                    self.ghosts.pack_forward(st, &self.links, dim, swap, 1),
                ];
                self.send_both(st, op, round, dim, &payloads);
            }
            Op::ForwardScalar => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = [
                    self.ghosts.pack_forward_scalar(st, dim, swap, 0),
                    self.ghosts.pack_forward_scalar(st, dim, swap, 1),
                ];
                self.send_both(st, op, round, dim, &payloads);
            }
            Op::Reverse => {
                // Reverse runs the sweeps backwards (z..x, last swap first).
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                let payloads = [
                    self.ghosts.pack_reverse(st, dim, swap, 0),
                    self.ghosts.pack_reverse(st, dim, swap, 1),
                ];
                self.send_both(st, op, round, dim, &payloads);
            }
            Op::ReverseScalar => {
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                let payloads = [
                    self.ghosts.pack_reverse_scalar(st, dim, swap, 0),
                    self.ghosts.pack_reverse_scalar(st, dim, swap, 1),
                ];
                self.send_both(st, op, round, dim, &payloads);
            }
            Op::Exchange => {
                let payloads = st.pack_exchange(round);
                self.send_both(st, op, round, round, &payloads);
            }
        }
        Ok(())
    }

    fn complete(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Border => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.recv_both(st, op, dim)?;
                self.ghosts.unpack_border(st, dim, swap, &payloads);
                // EAM scalar buffers must track the growing ghost tail.
                st.scalar.resize(st.atoms.ntotal(), 0.0);
            }
            Op::Exchange => {
                let payloads = self.recv_both(st, op, round)?;
                for p in &payloads {
                    st.unpack_exchange(p);
                }
            }
            Op::Forward => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.recv_both(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_forward(st, dim, swap, dir, &payloads[dir]);
                }
            }
            Op::ForwardScalar => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.recv_both(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_forward_scalar(st, dim, swap, dir, &payloads[dir]);
                }
            }
            Op::Reverse => {
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                let payloads = self.recv_both(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_reverse(st, dim, swap, dir, &payloads[dir]);
                }
            }
            Op::ReverseScalar => {
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                let payloads = self.recv_both(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_reverse_scalar(st, dim, swap, dir, &payloads[dir]);
                }
            }
        }
        Ok(())
    }
}

/// Naive peer-to-peer over MPI: direct exchange with every graph neighbor.
/// The only engine that also speaks *irregular* graphs (RCB): ghost ops
/// walk the edge lists either way, and migration switches from the three
/// staged face sweeps to one owner-directed round.
pub struct MpiP2p {
    comm: Arc<Communicator>,
    me: usize,
    sel: Option<SendSelector>,
    ghosts: P2pGhosts,
    stats: OpStats,
    migrate_rounds: usize,
}

impl MpiP2p {
    /// Build the engine for one rank of a grid graph (the selector is
    /// created lazily from the graph carried by the first `RankState`).
    #[must_use]
    pub fn new(comm: Arc<Communicator>, rank: usize) -> Self {
        MpiP2p {
            comm,
            me: rank,
            sel: None,
            ghosts: P2pGhosts::default(),
            stats: OpStats::default(),
            migrate_rounds: 3,
        }
    }

    /// Build the engine for one rank of an irregular graph (single-round
    /// owner-directed migration).
    #[must_use]
    pub fn new_irregular(comm: Arc<Communicator>, rank: usize) -> Self {
        MpiP2p {
            migrate_rounds: 1,
            ..Self::new(comm, rank)
        }
    }

    fn sel<'a>(sel: &'a mut Option<SendSelector>, st: &RankState) -> &'a SendSelector {
        sel.get_or_insert_with(|| st.graph.selector())
    }

    fn send_all(
        &mut self,
        st: &mut RankState,
        op: Op,
        round: usize,
        payloads: &[Vec<f64>],
        to_recv_side: bool,
    ) {
        let p = *self.comm.net().params();
        let bytes: usize = payloads.iter().map(|v| v.len() * 8).sum();
        let mut now = st.clock + p.pack_cost(bytes);
        for (k, payload) in payloads.iter().enumerate() {
            self.stats.count(op, round, payload.len() * 8);
            self.stats.copied(op, round, payload.len() * 8);
            let edge = if to_recv_side {
                &st.graph.recv[k]
            } else {
                &st.graph.send[k]
            };
            self.comm.send(
                self.me,
                edge.rank,
                p2p_tag(op, edge.peer_index),
                &wire::encode_f64s(payload),
                &mut now,
            );
        }
        st.charge(now - st.clock, op);
    }

    fn recv_all(
        &self,
        st: &mut RankState,
        op: Op,
        from_recv_side: bool,
    ) -> Result<Vec<Vec<f64>>, TofuError> {
        let n = st.graph.recv.len();
        let mut out = Vec::with_capacity(n);
        let mut now = st.clock;
        for k in 0..n {
            let edge = if from_recv_side {
                &st.graph.recv[k]
            } else {
                &st.graph.send[k]
            };
            let m = match self.comm.try_recv(self.me, edge.rank, p2p_tag(op, k), now) {
                Ok(m) => m,
                Err(e) => {
                    st.charge(now - st.clock, op);
                    return Err(e);
                }
            };
            now = m.now;
            st.arrival_horizon = st.arrival_horizon.max(m.arrival);
            out.push(wire::decode_f64s(&m.data));
        }
        st.charge(now - st.clock, op);
        Ok(out)
    }
}

impl GhostEngine for MpiP2p {
    fn name(&self) -> &'static str {
        "mpi-p2p"
    }

    fn rounds(&self, op: Op) -> usize {
        // Grid graphs migrate by sweeping the three dimensions even under
        // p2p ghosts; irregular graphs migrate owner-directed in one round.
        if op == Op::Exchange {
            self.migrate_rounds
        } else {
            1
        }
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn rebind_graph(&mut self, _st: &RankState) {
        // The send selector is derived from the graph's send regions;
        // rebuild it lazily against the swapped graph. Ghost send lists
        // and segment tables are refreshed by the next Border, which the
        // rebalance always schedules.
        self.sel = None;
    }

    fn post(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Border => {
                let sel = Self::sel(&mut self.sel, st);
                let payloads = self.ghosts.pack_border(st, sel);
                self.send_all(st, op, round, &payloads, false);
            }
            Op::Forward => {
                let payloads: Vec<_> = (0..st.graph.send.len())
                    .map(|k| self.ghosts.pack_forward(st, k))
                    .collect();
                self.send_all(st, op, round, &payloads, false);
            }
            Op::ForwardScalar => {
                let payloads: Vec<_> = (0..st.graph.send.len())
                    .map(|k| self.ghosts.pack_forward_scalar(st, k))
                    .collect();
                self.send_all(st, op, round, &payloads, false);
            }
            Op::Reverse => {
                let payloads: Vec<_> = (0..st.graph.recv.len())
                    .map(|k| self.ghosts.pack_reverse(st, k))
                    .collect();
                self.send_all(st, op, round, &payloads, true);
            }
            Op::ReverseScalar => {
                let payloads: Vec<_> = (0..st.graph.recv.len())
                    .map(|k| self.ghosts.pack_reverse_scalar(st, k))
                    .collect();
                self.send_all(st, op, round, &payloads, true);
            }
            Op::Exchange if st.graph.is_grid() => {
                let dim = round;
                let payloads = st.pack_exchange(dim);
                let p = *self.comm.net().params();
                let bytes: usize = payloads.iter().map(|v| v.len() * 8).sum();
                let mut now = st.clock + p.pack_cost(bytes);
                for (dir, payload) in payloads.iter().enumerate() {
                    self.stats.count(op, round, payload.len() * 8);
                    self.stats.copied(op, round, payload.len() * 8);
                    let link = *st.graph.face_link(dim, dir);
                    self.comm.send(
                        self.me,
                        link.rank,
                        staged_tag(op, dim, dir),
                        &wire::encode_f64s(payload),
                        &mut now,
                    );
                }
                st.charge(now - st.clock, op);
            }
            Op::Exchange => {
                // Irregular single round: every out-of-box atom goes
                // straight to its new owner, tagged with my slot in the
                // owner's migrate list.
                let payloads = st.pack_exchange_graph();
                let peers = st.graph.migrate_peers().to_vec();
                let p = *self.comm.net().params();
                let bytes: usize = payloads.iter().map(|v| v.len() * 8).sum();
                let mut now = st.clock + p.pack_cost(bytes);
                for (peer, payload) in peers.iter().zip(&payloads) {
                    self.stats.count(op, round, payload.len() * 8);
                    self.stats.copied(op, round, payload.len() * 8);
                    self.comm.send(
                        self.me,
                        peer.rank,
                        p2p_tag(op, peer.tag_index),
                        &wire::encode_f64s(payload),
                        &mut now,
                    );
                }
                st.charge(now - st.clock, op);
            }
        }
        Ok(())
    }

    fn complete(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Border => {
                let payloads = self.recv_all(st, op, true)?;
                self.ghosts.unpack_border(st, &payloads);
                st.scalar.resize(st.atoms.ntotal(), 0.0);
            }
            Op::Exchange if st.graph.is_grid() => {
                let dim = round;
                let mut now = st.clock;
                for dir in 0..2 {
                    let link = *st.graph.face_link(dim, dir);
                    let m = match self.comm.try_recv(
                        self.me,
                        link.rank,
                        staged_tag(op, dim, 1 - dir),
                        now,
                    ) {
                        Ok(m) => m,
                        Err(e) => {
                            st.charge(now - st.clock, op);
                            return Err(e);
                        }
                    };
                    now = m.now;
                    st.unpack_exchange(&wire::decode_f64s(&m.data));
                }
                st.charge(now - st.clock, op);
            }
            Op::Exchange => {
                let peers = st.graph.migrate_peers().to_vec();
                let mut now = st.clock;
                for (k, peer) in peers.iter().enumerate() {
                    let m = match self.comm.try_recv(self.me, peer.rank, p2p_tag(op, k), now) {
                        Ok(m) => m,
                        Err(e) => {
                            st.charge(now - st.clock, op);
                            return Err(e);
                        }
                    };
                    now = m.now;
                    st.unpack_exchange(&wire::decode_f64s(&m.data));
                }
                st.charge(now - st.clock, op);
            }
            Op::Forward => {
                let payloads = self.recv_all(st, op, true)?;
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_forward(st, k, v);
                }
            }
            Op::ForwardScalar => {
                let payloads = self.recv_all(st, op, true)?;
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_forward_scalar(st, k, v);
                }
            }
            Op::Reverse => {
                let payloads = self.recv_all(st, op, false)?;
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_reverse(st, k, v);
                }
            }
            Op::ReverseScalar => {
                let payloads = self.recv_all(st, op, false)?;
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_reverse_scalar(st, k, v);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_op_single;
    use crate::plan::{CommPlan, PlanConfig};
    use crate::sf::CommGraph;
    use crate::topo_map::Placement;
    use std::sync::Arc;
    use tofumd_md::atom::Atoms;
    use tofumd_tofu::{CellGrid, NetParams, TofuNet};

    /// A 2-rank fixture where rank 0 and rank 1 are x-face neighbors; the
    /// lockstep driver is emulated by posting both ranks then completing
    /// both.
    struct TwoRanks {
        comm: Arc<Communicator>,
        map: RankMap,
        global: Box3,
        states: [RankState; 2],
    }

    fn two_ranks(positions: [Vec<[f64; 3]>; 2]) -> TwoRanks {
        let grid = CellGrid::new([1, 1, 1]); // 12 nodes, 48 ranks
        let map = RankMap::new(grid, Placement::TopoAware);
        let rg = map.rank_grid; // [2, 6, 4]
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        let net = Arc::new(TofuNet::new(grid, NetParams::default()));
        let comm = Arc::new(Communicator::new(net, map.nranks(), 4));
        let mk = |rank: usize, pos: Vec<[f64; 3]>, map: &RankMap| {
            let plan = CommPlan::build(rank, map, &global, 2.8, PlanConfig::NEWTON);
            // Shift positions into this rank's sub-box.
            let sub = plan.sub;
            let pos = pos
                .into_iter()
                .map(|p| [sub.lo[0] + p[0], sub.lo[1] + p[1], sub.lo[2] + p[2]])
                .collect();
            RankState::new(
                Atoms::from_positions(pos, rank as u64 * 1000 + 1),
                CommGraph::from_grid(plan),
            )
        };
        let states = [
            mk(0, positions[0].clone(), &map),
            mk(1, positions[1].clone(), &map),
        ];
        TwoRanks {
            comm,
            map,
            global,
            states,
        }
    }

    /// All 48 ranks exist in the map but only ranks 0 and 1 hold atoms;
    /// the remaining ranks must still participate in the exchange for the
    /// lockstep to complete, so the fixture drives every rank.
    fn drive_all(engines: &mut [Box<dyn GhostEngine>], states: &mut [RankState], op: Op) {
        let rounds = engines[0].rounds(op);
        for round in 0..rounds {
            for (e, st) in engines.iter_mut().zip(states.iter_mut()) {
                e.post(op, round, st).unwrap();
            }
            for (e, st) in engines.iter_mut().zip(states.iter_mut()) {
                e.complete(op, round, st).unwrap();
            }
        }
    }

    fn full_fixture<F>(mk_engine: F) -> (Vec<Box<dyn GhostEngine>>, Vec<RankState>, Box3)
    where
        F: Fn(Arc<Communicator>, &RankMap, usize, &Box3) -> Box<dyn GhostEngine>,
    {
        let t = two_ranks([vec![[9.5, 5.0, 5.0]], vec![[0.5, 5.0, 5.0]]]);
        let nranks = t.map.nranks();
        let mut engines = Vec::new();
        let mut states = Vec::new();
        for r in 0..nranks {
            engines.push(mk_engine(t.comm.clone(), &t.map, r, &t.global));
            let plan = CommPlan::build(r, &t.map, &t.global, 2.8, PlanConfig::NEWTON);
            states.push(RankState::new(Atoms::default(), CommGraph::from_grid(plan)));
        }
        let [s0, s1] = t.states;
        states[0] = s0;
        states[1] = s1;
        (engines, states, t.global)
    }

    #[test]
    fn mpi_3stage_establishes_cross_rank_ghosts() {
        let (mut engines, mut states, _g) = full_fixture(|c, m, r, g| {
            Box::new(MpiThreeStage::new(c, m, r, g, 1)) as Box<dyn GhostEngine>
        });
        drive_all(&mut engines, &mut states, Op::Border);
        // Rank 0's atom at x = hi - 0.5 must appear as a ghost on rank 1
        // (its -x neighbor side), and vice versa.
        assert!(
            states[1].atoms.nghost() >= 1,
            "rank 1 got {} ghosts",
            states[1].atoms.nghost()
        );
        assert!(states[0].atoms.nghost() >= 1);
        // Tags preserved across the wire.
        let tags1: Vec<u64> = states[1].atoms.tag[states[1].atoms.nlocal..].to_vec();
        assert!(
            tags1.contains(&1),
            "rank 0's atom (tag 1) as ghost: {tags1:?}"
        );
    }

    #[test]
    fn mpi_3stage_forward_updates_ghost_positions() {
        let (mut engines, mut states, _g) = full_fixture(|c, m, r, g| {
            Box::new(MpiThreeStage::new(c, m, r, g, 1)) as Box<dyn GhostEngine>
        });
        drive_all(&mut engines, &mut states, Op::Border);
        let before = states[1].atoms.x[states[1].atoms.nlocal];
        // Move rank 0's atom and forward.
        states[0].atoms.x[0][1] += 0.25;
        drive_all(&mut engines, &mut states, Op::Forward);
        let after = states[1].atoms.x[states[1].atoms.nlocal];
        assert!((after[1] - before[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mpi_p2p_reverse_returns_ghost_forces() {
        // Fig. 5 semantics: rank 1 sends its -x-face atom to its *lower*
        // neighbors (rank 0 among them); rank 0 holds the ghost, computes,
        // and the reverse stage carries the force back to rank 1.
        let (mut engines, mut states, _g) =
            full_fixture(|c, _m, r, _g| Box::new(MpiP2p::new(c, r)) as Box<dyn GhostEngine>);
        drive_all(&mut engines, &mut states, Op::Border);
        assert!(
            states[0].atoms.nghost() >= 1,
            "rank 0 must hold rank 1's border atom as a ghost"
        );
        let n0 = states[0].atoms.nlocal;
        for gi in n0..states[0].atoms.ntotal() {
            states[0].atoms.f[gi] = [1.0, 2.0, 3.0];
        }
        states[1].atoms.zero_forces();
        drive_all(&mut engines, &mut states, Op::Reverse);
        assert!(states[1].atoms.f[0][0] >= 1.0 - 1e-12);
        assert!((states[1].atoms.f[0][1] / states[1].atoms.f[0][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tags_disambiguate_ops_and_links() {
        // Distinct (op, link) pairs must map to distinct MPI tags.
        let mut seen = std::collections::HashSet::new();
        for op in [
            Op::Border,
            Op::Forward,
            Op::Reverse,
            Op::ForwardScalar,
            Op::ReverseScalar,
        ] {
            for link in 0..124 {
                assert!(seen.insert(p2p_tag(op, link)), "collision at {op:?} {link}");
            }
            for dim in 0..3 {
                for dir in 0..2 {
                    assert!(
                        seen.insert(staged_tag(op, dim, dir) + 1_000_000),
                        "staged collision"
                    );
                }
            }
        }
    }

    #[test]
    fn engines_charge_time_to_the_right_buckets() {
        let (mut engines, mut states, _g) =
            full_fixture(|c, _m, r, _g| Box::new(MpiP2p::new(c, r)) as Box<dyn GhostEngine>);
        drive_all(&mut engines, &mut states, Op::Border);
        assert!(states[0].comm_time > 0.0);
        let comm_before = states[0].comm_time;
        for st in states.iter_mut() {
            let n = st.atoms.ntotal();
            st.scalar.resize(n, 1.0);
        }
        drive_all(&mut engines, &mut states, Op::ForwardScalar);
        assert!(
            states[0].pair_comm_time > 0.0,
            "scalar ops book into the pair bucket"
        );
        assert_eq!(
            states[0].comm_time, comm_before,
            "scalar ops must not book into Comm"
        );
    }

    #[test]
    fn run_op_single_is_a_noop_safe_helper() {
        // A rank alone in a 1-cell machine exchanging with itself is not a
        // supported configuration; run_op_single simply drives rounds.
        // Verify it compiles/links and the rounds accessor is sane.
        let t = two_ranks([vec![[5.0, 5.0, 5.0]], vec![[5.0, 5.0, 5.0]]]);
        let e = MpiThreeStage::new(t.comm.clone(), &t.map, 0, &t.global, 1);
        assert_eq!(e.rounds(Op::Border), 3);
        assert!(e.barrier_between_rounds());
        let e2 = MpiP2p::new(t.comm, 0);
        assert_eq!(e2.rounds(Op::Forward), 1);
        assert!(!e2.barrier_between_rounds());
        let _ = run_op_single; // referenced
    }
}
