//! Ghost engines over the uTofu one-sided transport: the paper's
//! contribution (§3.2–§3.4).
//!
//! Variants:
//! * [`UtofuThreeStage`] — the staged pattern re-implemented on uTofu
//!   (paper artifact `utofu_3stage`),
//! * [`UtofuP2p`] with [`UtofuConfig::coarse4`] — coarse-grained p2p, one
//!   VCQ per rank on its own TNI (`4tni_p2p`),
//! * [`UtofuConfig::single6`] — single thread driving 6 VCQs, the §4.2
//!   "abnormally poor" configuration (`6tni_p2p`),
//! * [`UtofuConfig::pool6`] — the optimized code: 6 spin-pool comm threads,
//!   one VCQ per TNI, pre-registered max-size buffers, ghost offsets
//!   piggybacked, forward puts written directly into the remote position
//!   array, 4 round-robin receive buffers (`opt`).
//!
//! The setup-stage address exchange (§3.4, Fig. 10: "all the registered
//! addresses of receive buffers and atom position arrays are sent to
//! neighbors") is modeled by a shared [`AddressBook`].

use crate::engine::{GhostEngine, Op, OpStats, RankState};
use crate::fine;
use crate::p2p::P2pGhosts;
use crate::plan::NeighborLink;
use crate::sf::{CommGraph, GraphEdge, SendSelector};
use crate::three_stage::{round_to_sweep, staged_links, StagedGhosts};
use crate::topo_map::RankMap;
use crate::wire;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use tofumd_md::region::Box3;
use tofumd_tofu::{
    dedupe_arrivals, try_wait_arrivals, Arrival, CqExhausted, DeliveryAnomalies, PutResult, Stadd,
    TofuError, TofuNet, Vcq, TNIS_PER_NODE,
};

/// Buffer kinds published in the address book.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BufKind {
    /// Receives border/forward/forward-scalar payloads (ghost-side inflow,
    /// from `recv[k]`).
    GhostIn,
    /// Receives reverse/reverse-scalar payloads and piggybacks (owner-side
    /// inflow, from `send[k]`).
    OwnerIn,
    /// The registered atom-position region (pre-registered direct writes).
    XRegion,
}

impl BufKind {
    fn label(self) -> &'static str {
        match self {
            BufKind::GhostIn => "ghost-in",
            BufKind::OwnerIn => "owner-in",
            BufKind::XRegion => "x-region",
        }
    }
}

/// Key of one published buffer: (rank, kind, the *owner's* edge index,
/// slot) — senders address a peer's buffer through their edge's
/// `peer_index`, which is that index by construction.
type AddrKey = (u32, BufKind, u16, u8);

/// Shared registry of every rank's registered buffer addresses — the
/// simulated setup-stage address exchange.
///
/// Read-mostly after setup: every post consults it, writes happen only at
/// registration and on buffer growth. An `RwLock` keeps the host-parallel
/// phase driver's concurrent lookups from serializing on one mutex.
#[derive(Default)]
pub struct AddressBook {
    map: RwLock<HashMap<AddrKey, (Stadd, usize)>>,
}

impl AddressBook {
    /// New empty book (one per cluster).
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn publish(&self, rank: u32, kind: BufKind, link: u16, slot: u8, stadd: Stadd, size: usize) {
        self.map
            .write()
            .insert((rank, kind, link, slot), (stadd, size));
    }

    fn lookup(
        &self,
        rank: u32,
        kind: BufKind,
        link: u16,
        slot: u8,
    ) -> Result<(Stadd, usize), TofuError> {
        self.map
            .read()
            .get(&(rank, kind, link, slot))
            .copied()
            .ok_or(TofuError::MissingBuffer {
                rank,
                kind: kind.label(),
                link: usize::from(link),
                slot: usize::from(slot),
            })
    }

    fn update_size(&self, rank: u32, kind: BufKind, link: u16, slot: u8, size: usize) {
        if let Some(e) = self.map.write().get_mut(&(rank, kind, link, slot)) {
            e.1 = size;
        }
    }
}

/// Configuration of a uTofu p2p engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtofuConfig {
    /// VCQs this rank creates (1 = own TNI only, 6 = one per TNI).
    pub vcqs: usize,
    /// Communication threads driving the VCQs (1 or 6; 6 requires 6 VCQs).
    pub comm_threads: usize,
    /// Pre-registered max-size buffers, direct forward writes and offset
    /// piggybacking (§3.4) — the `opt` behaviour.
    pub prereg: bool,
    /// Round-robin receive buffers per link (1 baseline, 4 in `opt`).
    pub slots: usize,
    /// Retransmissions allowed per failed put before the engine escapes to
    /// the reliable stack and requests fallback to an MPI transport.
    pub retry_budget: u32,
}

impl UtofuConfig {
    /// Default put-retry budget: enough to absorb any recoverable fault a
    /// seeded plan produces (those only hit a message's first attempt).
    pub const DEFAULT_RETRY_BUDGET: u32 = 3;

    /// Coarse-grained p2p: 1 thread, own TNI (`4tni_p2p`).
    #[must_use]
    pub fn coarse4() -> Self {
        UtofuConfig {
            vcqs: 1,
            comm_threads: 1,
            prereg: false,
            slots: 1,
            retry_budget: Self::DEFAULT_RETRY_BUDGET,
        }
    }

    /// Single thread over all 6 TNIs (`6tni_p2p`).
    #[must_use]
    pub fn single6() -> Self {
        UtofuConfig {
            vcqs: TNIS_PER_NODE,
            comm_threads: 1,
            prereg: false,
            slots: 1,
            retry_budget: Self::DEFAULT_RETRY_BUDGET,
        }
    }

    /// The optimized configuration: spin-pool threads, all TNIs,
    /// pre-registration, 4 round-robin buffers (`opt`).
    #[must_use]
    pub fn pool6() -> Self {
        UtofuConfig {
            vcqs: TNIS_PER_NODE,
            comm_threads: TNIS_PER_NODE,
            prereg: true,
            slots: 4,
            retry_budget: Self::DEFAULT_RETRY_BUDGET,
        }
    }
}

/// How generously baseline (non-prereg) buffers are undersized at setup so
/// dynamic growth — the §3.4 overhead — occurs and is accounted.
const BASELINE_UNDERSIZE: usize = 4;

/// Largest record width any op stores per atom (exchange: tag + x + v).
const MAX_RECORD_F64S: usize = wire::EXCHANGE_RECORD_F64S;

struct LinkBuffers {
    /// `[link][slot]` receive buffers. (Capacities live in the address
    /// book, which senders consult before writing.)
    bufs: Vec<Vec<Stadd>>,
}

/// Take all arrivals matching `pred`, canonicalize them with
/// [`dedupe_arrivals`] (deterministic order; duplicate and overwritten
/// deliveries collapsed), and require at least `count` *distinct*
/// deliveries to survive — a post-dedupe shortfall means a message is
/// genuinely missing even though retransmissions padded the raw count.
fn wait_deduped(
    net: &TofuNet,
    node: usize,
    now: f64,
    count: usize,
    pred: impl FnMut(&Arrival) -> bool,
) -> Result<(Vec<Arrival>, f64, DeliveryAnomalies), TofuError> {
    let (mut arrivals, t) = try_wait_arrivals(net, node, now, count, pred)?;
    let anomalies = dedupe_arrivals(&mut arrivals);
    if arrivals.len() < count {
        return Err(net.shortfall_error(node, count, arrivals.len()));
    }
    Ok((arrivals, t, anomalies))
}

/// Post one logical message on the faultable path, retrying with
/// exponential backoff (charged to the virtual clock) up to `budget`
/// resends. Retransmissions reuse `seq` so the receiver's duplicate
/// detection coalesces partial deliveries. When the budget is exhausted
/// the payload is handed to the reliable stack ([`Vcq::put_reliable`]) —
/// which cannot lose it — and the engine flags a fallback request so the
/// driver demotes the cluster to an MPI transport at the end of the step.
#[allow(clippy::too_many_arguments)]
fn put_with_retry(
    vcq: &mut Vcq,
    budget: u32,
    stats: &mut OpStats,
    op: Op,
    round: usize,
    fallback_wanted: &mut bool,
    now: &mut f64,
    dst_node: usize,
    dst_stadd: Stadd,
    dst_offset: usize,
    data: &[u8],
    piggyback: u64,
    seq: u64,
    cache_injection: bool,
) -> PutResult {
    let p = *vcq.net().params();
    let mut attempt = 0u32;
    loop {
        match vcq.try_put(
            now,
            dst_node,
            dst_stadd,
            dst_offset,
            data,
            piggyback,
            seq,
            attempt,
            cache_injection,
        ) {
            Ok(r) => return r,
            Err(_) if attempt < budget => {
                stats.retry(op, round);
                *now += p.retry_backoff * f64::from(1u32 << attempt.min(16));
                attempt += 1;
            }
            Err(_) => {
                stats.fallback(op, round);
                *fallback_wanted = true;
                *now += p.fallback_penalty + p.cpu_per_put_mpi;
                return vcq.put_reliable(
                    now,
                    dst_node,
                    dst_stadd,
                    dst_offset,
                    data,
                    piggyback,
                    seq,
                    cache_injection,
                );
            }
        }
    }
}

/// [`put_with_retry`] for the zero-copy path: the payload was serialized
/// in place into a local registered region (`src_stadd`/`src_offset`), so
/// there is no staging buffer — the NIC reads the region directly. Same
/// backoff/fallback protocol.
#[allow(clippy::too_many_arguments)]
fn put_region_with_retry(
    vcq: &mut Vcq,
    budget: u32,
    stats: &mut OpStats,
    op: Op,
    round: usize,
    fallback_wanted: &mut bool,
    now: &mut f64,
    dst_node: usize,
    dst_stadd: Stadd,
    dst_offset: usize,
    src_stadd: Stadd,
    src_offset: usize,
    len: usize,
    piggyback: u64,
    seq: u64,
    cache_injection: bool,
) -> PutResult {
    let p = *vcq.net().params();
    let mut attempt = 0u32;
    loop {
        match vcq.try_put_from_region(
            now,
            dst_node,
            dst_stadd,
            dst_offset,
            src_stadd,
            src_offset,
            len,
            piggyback,
            seq,
            attempt,
            cache_injection,
        ) {
            Ok(r) => return r,
            Err(_) if attempt < budget => {
                stats.retry(op, round);
                *now += p.retry_backoff * f64::from(1u32 << attempt.min(16));
                attempt += 1;
            }
            Err(_) => {
                stats.fallback(op, round);
                *fallback_wanted = true;
                *now += p.fallback_penalty + p.cpu_per_put_mpi;
                return vcq.put_reliable_from_region(
                    now,
                    dst_node,
                    dst_stadd,
                    dst_offset,
                    src_stadd,
                    src_offset,
                    len,
                    piggyback,
                    seq,
                    cache_injection,
                );
            }
        }
    }
}

/// Register memory through the faultable path, absorbing transient
/// registration refusals: each refused attempt still pays the kernel
/// transition (`mem_reg_base`), charged to `setup_cost`. After `budget`
/// refusals the engine registers through the reliable path, which cannot
/// fail. Refused attempts consume no region handle, so the address
/// sequence stays identical to a fault-free build.
fn register_with_retry(
    net: &Arc<TofuNet>,
    node: usize,
    len: usize,
    budget: u32,
    setup_cost: &mut f64,
) -> Stadd {
    for _ in 0..=budget {
        match net.try_register_mem(node, len) {
            Ok((stadd, cost)) => {
                *setup_cost += cost;
                return stadd;
            }
            Err(_) => *setup_cost += net.params().mem_reg_base,
        }
    }
    let (stadd, cost) = net.register_mem(node, len);
    *setup_cost += cost;
    stadd
}

/// Up to three creation attempts on one `(node, tni)` — rides out a
/// transiently exhausted CQ pool (an `ExhaustCq { times: <3 }` fault)
/// without giving up the preferred TNI binding.
fn create_vcq_retry(
    net: &Arc<TofuNet>,
    node: usize,
    tni: usize,
    tag: u32,
) -> Result<Vcq, CqExhausted> {
    for _ in 0..2 {
        if let Ok(v) = Vcq::create(net.clone(), node, tni, tag) {
            return Ok(v);
        }
    }
    Vcq::create(net.clone(), node, tni, tag)
}

/// Create a VCQ on the first TNI with a free CQ, preferring `first`.
/// Returns the exhaustion report for `first` when a different TNI had to
/// be used. Panics only when every TNI on the node is exhausted — with
/// 9 CQs x 6 TNIs against 4 ranks that is real resource starvation, not
/// a transient fault.
fn create_vcq_scan(
    net: &Arc<TofuNet>,
    node: usize,
    first: usize,
    tag: u32,
) -> (Vcq, Option<CqExhausted>) {
    let displaced = match create_vcq_retry(net, node, first, tag) {
        Ok(v) => return (v, None),
        Err(e) => Some(e),
    };
    for tni in (0..TNIS_PER_NODE).filter(|&t| t != first) {
        if let Ok(v) = create_vcq_retry(net, node, tni, tag) {
            return (v, displaced);
        }
    }
    panic!("node {node}: every TNI's CQ pool is exhausted (rank tag {tag})");
}

/// The uTofu p2p engine family.
pub struct UtofuP2p {
    net: Arc<TofuNet>,
    book: Arc<AddressBook>,
    node: usize,
    cfg: UtofuConfig,
    vcqs: Vec<Vcq>,
    sel: Option<SendSelector>,
    ghosts: P2pGhosts,
    ghost_in: LinkBuffers,
    owner_in: LinkBuffers,
    /// Per edge index: *local* registered send region the ghost-op frames
    /// are serialized into in place (zero-copy wire path). Never published
    /// — only this rank's NIC reads them.
    send_out: Vec<Stadd>,
    /// Current byte size of each `send_out` region.
    send_out_size: Vec<usize>,
    x_region: Option<Stadd>,
    /// Per send link: byte offset in the neighbor's x-region where our
    /// forwarded positions land (learned via piggyback at border time).
    remote_ghost_off: Vec<Option<usize>>,
    /// Round-robin slot cursor, advanced once per posted op.
    seq: usize,
    /// Sequence stamp for the *next* logical message; retransmissions of a
    /// message reuse its number, so receivers can detect duplicates.
    send_seq: u64,
    /// Sticky flag: a retry budget was exhausted and the payload escaped
    /// to the reliable stack — the driver should demote this cluster.
    fallback_wanted: bool,
    /// Set when CQ exhaustion at build time forced the shared single-VCQ
    /// configuration instead of the requested one.
    cq_fallback: Option<CqExhausted>,
    setup_cost: f64,
    /// Buffer-growth events observed (0 under prereg — test observable).
    pub growth_events: u64,
    stats: OpStats,
}

impl UtofuP2p {
    /// Build the engine for one rank and publish its buffers.
    ///
    /// `density` sizes the §3.4 "theoretical upper limit" buffers.
    #[must_use]
    pub fn new(
        net: Arc<TofuNet>,
        book: Arc<AddressBook>,
        graph: &CommGraph,
        node: usize,
        density: f64,
        cfg: UtofuConfig,
    ) -> Self {
        assert!(cfg.vcqs >= 1 && cfg.vcqs <= TNIS_PER_NODE);
        assert!(cfg.comm_threads == 1 || cfg.comm_threads == cfg.vcqs);
        let me = graph.me;
        let mut cfg = cfg;
        let mut setup_cost = 0.0;
        let mut cq_fallback = None;
        let mut vcqs = Vec::with_capacity(cfg.vcqs);
        // Coarse-grained (1 VCQ): rank r binds its own TNI (4 ranks -> 4
        // TNIs); fine-grained binds every TNI.
        let wanted: Vec<usize> = if cfg.vcqs == 1 {
            vec![me % 4]
        } else {
            (0..cfg.vcqs).collect()
        };
        let mut exhausted = None;
        for &tni in &wanted {
            match create_vcq_retry(&net, node, tni, me as u32) {
                Ok(v) => vcqs.push(v),
                Err(e) => {
                    exhausted = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = exhausted {
            // Persistent CQ exhaustion: return the partial set to the pool
            // (each Vcq frees its CQ on drop) and degrade to the shared
            // single-VCQ configuration on whichever TNI has room.
            vcqs.clear();
            cq_fallback = Some(e);
            cfg.vcqs = 1;
            cfg.comm_threads = 1;
            let (v, _) = create_vcq_scan(&net, node, me % 4, me as u32);
            vcqs.push(v);
        }
        let n = graph.recv.len();
        let mut mk_bufs = |links: &[GraphEdge], kind: BufKind| -> LinkBuffers {
            let mut bufs = Vec::with_capacity(n);
            for (k, link) in links.iter().enumerate() {
                let est_atoms = graph.max_atoms_estimate(link.offset, density);
                let full = wire::combined_size(est_atoms * MAX_RECORD_F64S);
                let size = if cfg.prereg {
                    full
                } else {
                    (full / BASELINE_UNDERSIZE).max(64)
                };
                let mut per_slot = Vec::with_capacity(cfg.slots);
                for slot in 0..cfg.slots {
                    let stadd =
                        register_with_retry(&net, node, size, cfg.retry_budget, &mut setup_cost);
                    book.publish(me as u32, kind, k as u16, slot as u8, stadd, size);
                    per_slot.push(stadd);
                }
                bufs.push(per_slot);
            }
            LinkBuffers { bufs }
        };
        // Ghost-side inflow arrives along recv edges; its max size mirrors
        // my own outgoing slab toward the opposite side — symmetric volumes.
        let ghost_in = mk_bufs(&graph.recv, BufKind::GhostIn);
        let owner_in = mk_bufs(&graph.send, BufKind::OwnerIn);
        // Local send regions, always full-size (they are this rank's own
        // memory — the undersize experiment concerns *remote* receive
        // buffers). Forward ops pack here per send edge, reverse ops per
        // recv edge; volumes are symmetric, so one set serves both.
        let mut send_out = Vec::with_capacity(n);
        let mut send_out_size = Vec::with_capacity(n);
        for link in &graph.send {
            let est_atoms = graph.max_atoms_estimate(link.offset, density);
            let size = wire::combined_size(est_atoms * MAX_RECORD_F64S);
            let stadd = register_with_retry(&net, node, size, cfg.retry_budget, &mut setup_cost);
            send_out.push(stadd);
            send_out_size.push(size);
        }
        let x_region = if cfg.prereg {
            // Position array registered once at its theoretical maximum:
            // locals + full ghost shell, with the plan's 2x headroom.
            let local_est = (density * graph.sub.volume() * 2.0) as usize + 64;
            let ghost_est = (graph.total_ghost_estimate(density) * 2.0) as usize + 64;
            let bytes = (local_est + ghost_est) * 24;
            let stadd = register_with_retry(&net, node, bytes, cfg.retry_budget, &mut setup_cost);
            book.publish(me as u32, BufKind::XRegion, 0, 0, stadd, bytes);
            Some(stadd)
        } else {
            None
        };
        UtofuP2p {
            net,
            book,
            node,
            cfg,
            vcqs,
            sel: None,
            ghosts: P2pGhosts::default(),
            ghost_in,
            owner_in,
            send_out,
            send_out_size,
            x_region,
            remote_ghost_off: vec![None; n],
            seq: 0,
            send_seq: 0,
            fallback_wanted: false,
            cq_fallback,
            setup_cost,
            growth_events: 0,
            stats: OpStats::default(),
        }
    }

    /// The CQ-exhaustion event that forced this engine into the shared
    /// single-VCQ configuration at build time, if any.
    #[must_use]
    pub fn cq_fallback(&self) -> Option<CqExhausted> {
        self.cq_fallback
    }

    fn sel<'a>(sel: &'a mut Option<SendSelector>, st: &RankState) -> &'a SendSelector {
        sel.get_or_insert_with(|| st.graph.selector())
    }

    /// Destination buffer for a payload to link `k` of `op`.
    fn dst_of(
        &self,
        st: &RankState,
        op: Op,
        k: usize,
        slot: u8,
    ) -> Result<(usize, Stadd, usize), TofuError> {
        let (link, kind) = match op {
            Op::Border | Op::Forward | Op::ForwardScalar => (&st.graph.send[k], BufKind::GhostIn),
            Op::Reverse | Op::ReverseScalar => (&st.graph.recv[k], BufKind::OwnerIn),
            Op::Exchange => unreachable!("exchange uses its own buffer path"),
        };
        let (stadd, size) =
            self.book
                .lookup(link.rank as u32, kind, link.peer_index as u16, slot)?;
        Ok((link.node, stadd, size))
    }

    /// Grow an undersized remote buffer: handshake + re-registration (the
    /// dynamic-expansion overhead pre-registration eliminates).
    #[allow(clippy::too_many_arguments)]
    fn grow_remote(
        &mut self,
        st: &mut RankState,
        op: Op,
        k: usize,
        slot: u8,
        dst_node: usize,
        stadd: Stadd,
        need: usize,
    ) {
        let p = *self.net.params();
        let (link, kind) = match op {
            Op::Border | Op::Forward | Op::ForwardScalar => (st.graph.send[k], BufKind::GhostIn),
            Op::Reverse | Op::ReverseScalar => (st.graph.recv[k], BufKind::OwnerIn),
            Op::Exchange => unreachable!("exchange uses its own buffer path"),
        };
        let new_size = need.next_power_of_two();
        let cost = self.net.grow_mem(dst_node, stadd, new_size);
        // Handshake round-trip + the remote registration stall.
        let dt = 2.0 * p.wire_time(0, link.hops) + cost;
        st.charge(dt, op);
        self.book.update_size(
            link.rank as u32,
            kind,
            link.peer_index as u16,
            slot,
            new_size,
        );
        self.growth_events += 1;
        self.stats.growth(op, 0);
    }

    /// Post the payloads of one op across the configured threads/VCQs.
    /// Returns the post-phase completion time charged to the clock.
    fn post_payloads(
        &mut self,
        st: &mut RankState,
        op: Op,
        payloads: &[Vec<f64>],
    ) -> Result<(), TofuError> {
        let p = *self.net.params();
        let slot = (self.seq % self.cfg.slots) as u8;
        self.seq += 1;
        let n = payloads.len();
        // One sequence number per logical message, assigned in link order
        // so the numbering is independent of the thread assignment below.
        let seq_base = self.send_seq;
        self.send_seq += n as u64;
        // Pre-resolve destinations, growing undersized buffers first.
        let mut dsts = Vec::with_capacity(n);
        for (k, payload) in payloads.iter().enumerate() {
            let need = wire::combined_size(payload.len());
            let (node, stadd, size) = self.dst_of(st, op, k, slot)?;
            if need > size {
                self.grow_remote(st, op, k, slot, node, stadd, need);
            }
            let (node, stadd, _) = self.dst_of(st, op, k, slot)?;
            dsts.push((node, stadd));
        }
        // Forward under prereg writes straight into the remote x-region.
        let direct_x = self.cfg.prereg && op == Op::Forward;
        let start = st.clock;
        let mut stats_counter: Vec<(usize, usize, usize)> = Vec::new();
        let mut thread_ends = Vec::new();
        let costs: Vec<f64> = payloads
            .iter()
            .enumerate()
            .map(|(k, pl)| {
                let link = match op {
                    Op::Border | Op::Forward | Op::ForwardScalar => &st.graph.send[k],
                    _ => &st.graph.recv[k],
                };
                fine::link_cost(pl.len() * 8, link.hops, &p)
            })
            .collect();
        let assignment = if self.cfg.comm_threads > 1 {
            fine::balance_lpt(&costs, self.cfg.comm_threads)
        } else {
            vec![(0..n).collect::<Vec<_>>()]
        };
        let region_overhead = if self.cfg.comm_threads > 1 {
            p.pool_region_overhead
        } else {
            // A single thread driving v VCQs pays the per-VCQ software cost
            // (§4.2's explanation for 6TNI-single-thread).
            p.vcq_drive_overhead * self.cfg.vcqs as f64
        };
        for (t, links) in assignment.iter().enumerate() {
            let mut now = start + region_overhead;
            for &k in links {
                let payload = &payloads[k];
                let bytes = wire::frame_combined(payload);
                stats_counter.push((k, payload.len() * 8, bytes.len()));
                now += p.pack_cost(bytes.len());
                let (dst_node, dst_stadd) = dsts[k];
                // The receiver indexes payloads by *its own* edge list.
                let peer_k = match op {
                    Op::Border | Op::Forward | Op::ForwardScalar => st.graph.send[k].peer_index,
                    _ => st.graph.recv[k].peer_index,
                };
                let vcq = &mut self.vcqs[t % self.cfg.vcqs.max(1)];
                if direct_x {
                    // An empty forward (no atoms cross this link) sends
                    // nothing; the receiver expects arrivals only for its
                    // non-empty ghost segments.
                    if payload.is_empty() {
                        continue;
                    }
                    let off = self.remote_ghost_off[k].ok_or(TofuError::PhaseOrder {
                        node: self.node,
                        phase: "forward",
                        missing: "ghost offsets from border",
                    })?;
                    let raw = wire::encode_f64s(payload);
                    let (xs, _) =
                        self.book
                            .lookup(st.graph.send[k].rank as u32, BufKind::XRegion, 0, 0)?;
                    put_with_retry(
                        vcq,
                        self.cfg.retry_budget,
                        &mut self.stats,
                        op,
                        0,
                        &mut self.fallback_wanted,
                        &mut now,
                        dst_node,
                        xs,
                        off,
                        &raw,
                        peer_k as u64,
                        seq_base + 1 + k as u64,
                        true,
                    );
                    continue;
                }
                put_with_retry(
                    vcq,
                    self.cfg.retry_budget,
                    &mut self.stats,
                    op,
                    0,
                    &mut self.fallback_wanted,
                    &mut now,
                    dst_node,
                    dst_stadd,
                    0,
                    &bytes,
                    peer_k as u64,
                    seq_base + 1 + k as u64,
                    true,
                );
            }
            thread_ends.push(now);
        }
        let end = thread_ends.into_iter().fold(start, f64::max);
        // Count payload messages (raw bytes for direct x-writes, framed
        // otherwise; skipped empties under direct_x are not counted).
        // Framed messages passed through `frame_combined`'s staging copy;
        // direct x-writes staged through `encode_f64s`.
        for (k, raw, framed) in stats_counter {
            if direct_x {
                if !payloads[k].is_empty() {
                    self.stats.count(op, 0, raw);
                    self.stats.copied(op, 0, raw);
                }
            } else {
                self.stats.count(op, 0, framed);
                self.stats.copied(op, 0, framed);
            }
        }
        st.charge(end - start, op);
        Ok(())
    }

    /// Zero-copy post for the repeated ghost ops (forward/reverse and the
    /// EAM scalars): the payload sizes are known from the ghost layout, so
    /// each frame is serialized *in place* into this rank's registered
    /// `send_out` region and put straight from there — no intermediate
    /// `Vec`, no staging `frame_combined` copy, no pack cost charged, and
    /// `bytes_copied` stays at zero for these ops. Border and exchange
    /// (which discover their payloads while packing) stay on the staged
    /// [`UtofuP2p::post_payloads`] path, measured for comparison.
    fn post_direct(&mut self, st: &mut RankState, op: Op) -> Result<(), TofuError> {
        let p = *self.net.params();
        let slot = (self.seq % self.cfg.slots) as u8;
        self.seq += 1;
        let n = match op {
            Op::Forward | Op::ForwardScalar => st.graph.send.len(),
            _ => st.graph.recv.len(),
        };
        let seq_base = self.send_seq;
        self.send_seq += n as u64;
        // Payload sizes fall out of the ghost layout before any packing.
        let f64s: Vec<usize> = (0..n)
            .map(|k| match op {
                Op::Forward => self.ghosts.forward_f64s(k),
                Op::Reverse => self.ghosts.reverse_f64s(k),
                Op::ForwardScalar => self.ghosts.scalar_f64s(k, false),
                Op::ReverseScalar => self.ghosts.scalar_f64s(k, true),
                _ => unreachable!("post_direct handles only the ghost ops"),
            })
            .collect();
        // Pre-resolve destinations, growing undersized remote buffers.
        let mut dsts = Vec::with_capacity(n);
        for (k, &len) in f64s.iter().enumerate() {
            let need = wire::combined_size(len);
            let (node, stadd, size) = self.dst_of(st, op, k, slot)?;
            if need > size {
                self.grow_remote(st, op, k, slot, node, stadd, need);
            }
            let (node, stadd, _) = self.dst_of(st, op, k, slot)?;
            dsts.push((node, stadd));
        }
        // Serialize every frame in place. Local regions are sized to the
        // theoretical maximum at build; growth here is a local
        // re-registration, charged but not a remote handshake.
        let mut framed = Vec::with_capacity(n);
        for (k, &len) in f64s.iter().enumerate() {
            let need = wire::combined_size(len);
            if need > self.send_out_size[k] {
                let new_size = need.next_power_of_two();
                let cost = self.net.grow_mem(self.node, self.send_out[k], new_size);
                self.send_out_size[k] = new_size;
                st.charge(cost, op);
            }
            let ghosts = &self.ghosts;
            let bytes = self
                .net
                .write_local_with(self.node, self.send_out[k], 0, need, |buf| {
                    let mut w = wire::CombinedWriter::new(buf);
                    match op {
                        Op::Forward => ghosts.pack_forward_into(st, k, &mut w),
                        Op::Reverse => ghosts.pack_reverse_into(st, k, &mut w),
                        Op::ForwardScalar => ghosts.pack_forward_scalar_into(st, k, &mut w),
                        Op::ReverseScalar => ghosts.pack_reverse_scalar_into(st, k, &mut w),
                        _ => unreachable!("post_direct handles only the ghost ops"),
                    }
                    w.finish()
                });
            framed.push(bytes);
        }
        // Forward under prereg writes straight into the remote x-region:
        // the raw values start right after the frame header, so the same
        // in-place serialization serves both put shapes.
        let direct_x = self.cfg.prereg && op == Op::Forward;
        let start = st.clock;
        let costs: Vec<f64> = f64s
            .iter()
            .enumerate()
            .map(|(k, &len)| {
                let link = match op {
                    Op::Forward | Op::ForwardScalar => &st.graph.send[k],
                    _ => &st.graph.recv[k],
                };
                fine::link_cost(len * 8, link.hops, &p)
            })
            .collect();
        let assignment = if self.cfg.comm_threads > 1 {
            fine::balance_lpt(&costs, self.cfg.comm_threads)
        } else {
            vec![(0..n).collect::<Vec<_>>()]
        };
        let region_overhead = if self.cfg.comm_threads > 1 {
            p.pool_region_overhead
        } else {
            p.vcq_drive_overhead * self.cfg.vcqs as f64
        };
        let mut thread_ends = Vec::new();
        for (t, links) in assignment.iter().enumerate() {
            let mut now = start + region_overhead;
            for &k in links {
                let (dst_node, dst_stadd) = dsts[k];
                let peer_k = match op {
                    Op::Forward | Op::ForwardScalar => st.graph.send[k].peer_index,
                    _ => st.graph.recv[k].peer_index,
                };
                let vcq = &mut self.vcqs[t % self.cfg.vcqs.max(1)];
                if direct_x {
                    if f64s[k] == 0 {
                        continue;
                    }
                    let off = self.remote_ghost_off[k].ok_or(TofuError::PhaseOrder {
                        node: self.node,
                        phase: "forward",
                        missing: "ghost offsets from border",
                    })?;
                    let (xs, _) =
                        self.book
                            .lookup(st.graph.send[k].rank as u32, BufKind::XRegion, 0, 0)?;
                    put_region_with_retry(
                        vcq,
                        self.cfg.retry_budget,
                        &mut self.stats,
                        op,
                        0,
                        &mut self.fallback_wanted,
                        &mut now,
                        dst_node,
                        xs,
                        off,
                        self.send_out[k],
                        wire::COMBINED_HEADER_BYTES,
                        f64s[k] * 8,
                        peer_k as u64,
                        seq_base + 1 + k as u64,
                        true,
                    );
                    continue;
                }
                put_region_with_retry(
                    vcq,
                    self.cfg.retry_budget,
                    &mut self.stats,
                    op,
                    0,
                    &mut self.fallback_wanted,
                    &mut now,
                    dst_node,
                    dst_stadd,
                    0,
                    self.send_out[k],
                    0,
                    framed[k],
                    peer_k as u64,
                    seq_base + 1 + k as u64,
                    true,
                );
            }
            thread_ends.push(now);
        }
        let end = thread_ends.into_iter().fold(start, f64::max);
        // Count messages; nothing staged, so `bytes_copied` stays 0.
        for (k, &len) in f64s.iter().enumerate() {
            if direct_x {
                if len > 0 {
                    self.stats.count(op, 0, len * 8);
                }
            } else {
                self.stats.count(op, 0, framed[k]);
            }
        }
        st.charge(end - start, op);
        Ok(())
    }

    /// Wait for the `n` messages of `op` and return payloads in link order.
    fn wait_payloads(&mut self, st: &mut RankState, op: Op) -> Result<Vec<Vec<f64>>, TofuError> {
        let p = *self.net.params();
        let n = st.graph.recv.len();
        // Identify which stadds we expect for this op.
        let expected: Vec<Stadd> = match op {
            Op::Border | Op::Forward | Op::ForwardScalar => {
                self.ghost_in.bufs.iter().flatten().copied().collect()
            }
            Op::Reverse | Op::ReverseScalar => {
                self.owner_in.bufs.iter().flatten().copied().collect()
            }
            Op::Exchange => unreachable!("exchange has a dedicated receive path"),
        };
        let direct_x = self.cfg.prereg && op == Op::Forward;
        let (arrivals, t, anomalies) = if direct_x {
            let xs = self.x_region.ok_or(TofuError::PhaseOrder {
                node: self.node,
                phase: "forward",
                missing: "preregistered x region",
            })?;
            // Empty segments produce no message (§3.4 direct writes).
            let expected_n = self
                .ghosts
                .ghost_seg
                .iter()
                .filter(|&&(_, count)| count > 0)
                .count();
            wait_deduped(&self.net, self.node, st.clock, expected_n, |a| {
                a.stadd == xs && a.len > 0
            })?
        } else {
            wait_deduped(&self.net, self.node, st.clock, n, |a| {
                a.len > 0 && expected.contains(&a.stadd)
            })?
        };
        self.stats.add_dup_drops(op, 0, anomalies.duplicates);
        self.stats.add_overwrites(op, 0, anomalies.overwrites);
        // Map arrivals back to link indices.
        let mut payloads = vec![Vec::new(); n];
        let mut unpack_bytes = 0usize;
        for a in &arrivals {
            st.arrival_horizon = st.arrival_horizon.max(a.time);
            let k = if direct_x {
                // Offset identifies the ghost segment, hence the link.
                self.ghosts
                    .ghost_seg
                    .iter()
                    .position(|&(start, count)| count > 0 && start * 24 == a.offset)
                    .ok_or(TofuError::PhaseOrder {
                        node: self.node,
                        phase: "forward",
                        missing: "ghost segment matching arrival offset",
                    })?
            } else {
                a.piggyback as usize
            };
            let raw = self.net.read_local(self.node, a.stadd, a.offset, a.len);
            payloads[k] = if direct_x {
                wire::decode_f64s(&raw)
            } else {
                wire::parse_combined(&raw)
            };
            if !direct_x {
                unpack_bytes += a.len;
            }
            // Direct x-region writes need no unpack copy (§3.4).
        }
        // Receiver-side CPU: one MRQ poll/dequeue per message plus the
        // linear-scan match against the posted buffer set (the O(N^2)
        // term of Fig. 15), plus the unpack copy (skipped for direct
        // x-region writes).
        let n_bufs = if direct_x {
            self.ghosts.ghost_seg.len()
        } else {
            expected.len()
        };
        let poll =
            arrivals.len() as f64 * (p.cpu_per_put_utofu + n_bufs as f64 * p.mrq_match_per_buffer);
        let dt = if self.cfg.comm_threads > 1 {
            // Polling and unpacking parallelize over the pool.
            (t - st.clock)
                + (poll + p.pack_cost(unpack_bytes)) / self.cfg.comm_threads as f64
                + p.pool_region_overhead
        } else {
            t - st.clock + poll + p.pack_cost(unpack_bytes)
        };
        st.charge(dt, op);
        Ok(payloads)
    }

    /// After border unpack, send each ghost provider the offset where its
    /// atoms landed (8-byte piggyback, §3.4).
    fn send_ghost_offsets(&mut self, st: &mut RankState) -> Result<(), TofuError> {
        let mut now = st.clock;
        let n = st.graph.recv.len();
        let seq_base = self.send_seq;
        self.send_seq += n as u64;
        for k in 0..n {
            let (start, _count) = self.ghosts.ghost_seg[k];
            let link = &st.graph.recv[k];
            // Target the provider's OwnerIn buffer (same inflow direction
            // as a reverse message); zero-length write, descriptor-only.
            let (stadd, _) = self.book.lookup(
                link.rank as u32,
                BufKind::OwnerIn,
                link.peer_index as u16,
                0,
            )?;
            put_with_retry(
                &mut self.vcqs[0],
                self.cfg.retry_budget,
                &mut self.stats,
                Op::Border,
                0,
                &mut self.fallback_wanted,
                &mut now,
                link.node,
                stadd,
                0,
                &[],
                (link.peer_index as u64) << 48 | (start * 24) as u64,
                seq_base + 1 + k as u64,
                false,
            );
        }
        st.charge(now - st.clock, Op::Border);
        Ok(())
    }

    /// Consume the offset piggybacks from all send links (before the first
    /// prereg forward). Piggybacks target *this rank's* OwnerIn buffers —
    /// four ranks share each node's MRQ, so the address filter is what
    /// keeps a rank from stealing its node-mates' descriptors.
    fn recv_ghost_offsets(&mut self, st: &mut RankState) -> Result<(), TofuError> {
        let n = st.graph.send.len();
        let mine: Vec<Stadd> = self.owner_in.bufs.iter().map(|slots| slots[0]).collect();
        let (arrivals, t, anomalies) = wait_deduped(&self.net, self.node, st.clock, n, |a| {
            a.len == 0 && mine.contains(&a.stadd)
        })?;
        self.stats
            .add_dup_drops(Op::Border, 0, anomalies.duplicates);
        self.stats
            .add_overwrites(Op::Border, 0, anomalies.overwrites);
        for a in &arrivals {
            let k = (a.piggyback >> 48) as usize;
            let off = (a.piggyback & 0xFFFF_FFFF_FFFF) as usize;
            self.remote_ghost_off[k] = Some(off);
        }
        st.charge(t - st.clock, Op::Border);
        Ok(())
    }
}

impl UtofuP2p {
    /// Indices of the pure-face links for sweep `dim`: the -face in
    /// `send`, the +face in `recv` (present for every grid graph; their
    /// absence is a malformed graph, reported rather than panicking).
    fn face_indices(st: &RankState, dim: usize) -> Result<(usize, usize), TofuError> {
        let mut want_minus = [0i8; 3];
        want_minus[dim] = -1;
        let mut want_plus = [0i8; 3];
        want_plus[dim] = 1;
        let k_minus = st
            .graph
            .send
            .iter()
            .position(|l| l.offset.d == want_minus)
            .ok_or(TofuError::PhaseOrder {
                node: st.graph.me,
                phase: "exchange",
                missing: "-face link in send edges",
            })?;
        let k_plus = st
            .graph
            .recv
            .iter()
            .position(|l| l.offset.d == want_plus)
            .ok_or(TofuError::PhaseOrder {
                node: st.graph.me,
                phase: "exchange",
                missing: "+face link in recv edges",
            })?;
        Ok((k_minus, k_plus))
    }

    /// Send the two migration payloads of sweep `dim`: toward the -face
    /// via the neighbor's GhostIn buffer (border-direction flow), toward
    /// the +face via its OwnerIn buffer (reverse-direction flow).
    fn post_exchange(&mut self, st: &mut RankState, dim: usize) -> Result<(), TofuError> {
        let p = *self.net.params();
        let payloads = st.pack_exchange(dim);
        let (k_minus, k_plus) = Self::face_indices(st, dim)?;
        let slot = (self.seq % self.cfg.slots) as u8;
        self.seq += 1;
        let seq_base = self.send_seq;
        self.send_seq += 2;
        let mut now = st.clock;
        for (dir, payload) in payloads.iter().enumerate() {
            let (link, kind) = if dir == 0 {
                (st.graph.send[k_minus], BufKind::GhostIn)
            } else {
                (st.graph.recv[k_plus], BufKind::OwnerIn)
            };
            let k = link.peer_index;
            let bytes = wire::frame_combined(payload);
            let (stadd, size) = self.book.lookup(link.rank as u32, kind, k as u16, slot)?;
            if bytes.len() > size {
                let new_size = bytes.len().next_power_of_two();
                let cost = self.net.grow_mem(link.node, stadd, new_size);
                now += 2.0 * p.wire_time(0, link.hops) + cost;
                self.book
                    .update_size(link.rank as u32, kind, k as u16, slot, new_size);
                self.growth_events += 1;
                self.stats.growth(Op::Exchange, dim);
            }
            now += p.pack_cost(bytes.len());
            self.stats.count(Op::Exchange, dim, bytes.len());
            self.stats.copied(Op::Exchange, dim, bytes.len());
            put_with_retry(
                &mut self.vcqs[0],
                self.cfg.retry_budget,
                &mut self.stats,
                Op::Exchange,
                dim,
                &mut self.fallback_wanted,
                &mut now,
                link.node,
                stadd,
                0,
                &bytes,
                k as u64,
                seq_base + 1 + dir as u64,
                true,
            );
        }
        st.charge(now - st.clock, Op::Exchange);
        Ok(())
    }

    /// Receive the two migration payloads of sweep `dim` and append the
    /// migrants as locals.
    fn complete_exchange(&mut self, st: &mut RankState, dim: usize) -> Result<(), TofuError> {
        let p = *self.net.params();
        let (k_minus, k_plus) = Self::face_indices(st, dim)?;
        let expect: Vec<Stadd> = self.ghost_in.bufs[k_plus]
            .iter()
            .chain(&self.owner_in.bufs[k_minus])
            .copied()
            .collect();
        let (arrivals, t, anomalies) = wait_deduped(&self.net, self.node, st.clock, 2, |a| {
            a.len > 0 && expect.contains(&a.stadd)
        })?;
        self.stats
            .add_dup_drops(Op::Exchange, dim, anomalies.duplicates);
        self.stats
            .add_overwrites(Op::Exchange, dim, anomalies.overwrites);
        let mut unpack = 0usize;
        for a in &arrivals {
            let raw = self.net.read_local(self.node, a.stadd, a.offset, a.len);
            st.unpack_exchange(&wire::parse_combined(&raw));
            unpack += a.len;
        }
        let poll = 2.0 * p.cpu_per_put_utofu;
        st.charge(t - st.clock + poll + p.pack_cost(unpack), Op::Exchange);
        Ok(())
    }
}

impl GhostEngine for UtofuP2p {
    fn name(&self) -> &'static str {
        match (self.cfg.comm_threads, self.cfg.vcqs, self.cfg.prereg) {
            (1, 1, _) => "utofu-p2p-4tni",
            (1, _, _) => "utofu-p2p-6tni",
            _ => "utofu-p2p-pool",
        }
    }

    fn rounds(&self, op: Op) -> usize {
        // Migration sweeps the three dimensions even under p2p ghosts.
        if op == Op::Exchange {
            3
        } else {
            1
        }
    }

    fn post(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Exchange => self.post_exchange(st, round),
            Op::Border => {
                let sel = Self::sel(&mut self.sel, st);
                let payloads = self.ghosts.pack_border(st, sel);
                self.post_payloads(st, op, &payloads)
            }
            Op::Forward => {
                if self.cfg.prereg && self.remote_ghost_off.iter().any(Option::is_none) {
                    self.recv_ghost_offsets(st)?;
                }
                self.post_direct(st, op)
            }
            Op::ForwardScalar | Op::Reverse | Op::ReverseScalar => self.post_direct(st, op),
        }
    }

    fn complete(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        if op == Op::Exchange {
            return self.complete_exchange(st, round);
        }
        let payloads = self.wait_payloads(st, op)?;
        match op {
            Op::Border => {
                self.ghosts.unpack_border(st, &payloads);
                st.scalar.resize(st.atoms.ntotal(), 0.0);
                if self.cfg.prereg {
                    self.remote_ghost_off.fill(None);
                    self.send_ghost_offsets(st)?;
                }
            }
            Op::Forward => {
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_forward(st, k, v);
                }
            }
            Op::ForwardScalar => {
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_forward_scalar(st, k, v);
                }
            }
            Op::Reverse => {
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_reverse(st, k, v);
                }
            }
            Op::ReverseScalar => {
                for (k, v) in payloads.iter().enumerate() {
                    self.ghosts.unpack_reverse_scalar(st, k, v);
                }
            }
            Op::Exchange => unreachable!("handled by the early return above"),
        }
        Ok(())
    }

    fn setup_cost(&self) -> f64 {
        self.setup_cost
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn fallback_requested(&self) -> bool {
        self.fallback_wanted
    }
}

/// The staged (3-stage) pattern carried over uTofu — `utofu_3stage`.
pub struct UtofuThreeStage {
    net: Arc<TofuNet>,
    book: Arc<AddressBook>,
    node: usize,
    links: [[NeighborLink; 2]; 3],
    ghosts: StagedGhosts,
    /// Swaps per dimension (the plan's shell count).
    shells: usize,
    /// `[dim*2+dir][0]` inflow buffers (single slot).
    ghost_in: Vec<Stadd>,
    owner_in: Vec<Stadd>,
    /// Local registered send regions `[dim*2+dir]` — never published;
    /// ghost-op frames are serialized in place and put straight from here.
    send_out: Vec<Stadd>,
    send_out_size: Vec<usize>,
    vcq: Vcq,
    /// Sequence stamp for the next logical message (see [`UtofuP2p`]).
    send_seq: u64,
    /// Sticky retry-budget-exhausted flag (see [`UtofuP2p`]).
    fallback_wanted: bool,
    setup_cost: f64,
    /// Growth events (same baseline dynamic-expansion accounting).
    pub growth_events: u64,
    stats: OpStats,
}

impl UtofuThreeStage {
    /// Build the engine for one rank and publish its 12 face buffers.
    #[must_use]
    pub fn new(
        net: Arc<TofuNet>,
        book: Arc<AddressBook>,
        map: &RankMap,
        graph: &CommGraph,
        node: usize,
        density: f64,
        global: &Box3,
    ) -> Self {
        let me = graph.me;
        let shells = match graph.config() {
            Some(c) => c.shells,
            None => panic!("the staged engine requires a grid graph"),
        };
        let links = staged_links(map, me, global);
        // Prefer the rank's own TNI; a transiently or persistently
        // exhausted CQ pool shifts the binding to any TNI with room.
        let (vcq, _displaced) = create_vcq_scan(&net, node, me % 4, me as u32);
        let mut setup_cost = 0.0;
        // Face messages carry up to the staged slab: (a+2r)^2 * r volume at
        // the largest stage — size generously from the whole-shell estimate.
        let a = graph.sub.lengths();
        let r = graph.r_ghost;
        let max_slab = (a[0] + 2.0 * r) * (a[1] + 2.0 * r) * r;
        let est_atoms = (2.0 * density * max_slab) as usize + 16;
        let full = wire::combined_size(est_atoms * MAX_RECORD_F64S);
        let size = full / BASELINE_UNDERSIZE;
        let mut ghost_in = Vec::with_capacity(6);
        let mut owner_in = Vec::with_capacity(6);
        // Local send regions are always full-size: the undersize baseline
        // experiment models *remote receive* buffers; this rank's own
        // staging memory is registered once at the theoretical maximum.
        let mut send_out = Vec::with_capacity(6);
        let budget = UtofuConfig::DEFAULT_RETRY_BUDGET;
        for idx in 0..6u16 {
            let s1 = register_with_retry(&net, node, size, budget, &mut setup_cost);
            book.publish(me as u32, BufKind::GhostIn, idx, 0, s1, size);
            let s2 = register_with_retry(&net, node, size, budget, &mut setup_cost);
            book.publish(me as u32, BufKind::OwnerIn, idx, 0, s2, size);
            ghost_in.push(s1);
            owner_in.push(s2);
            send_out.push(register_with_retry(
                &net,
                node,
                full,
                budget,
                &mut setup_cost,
            ));
        }
        UtofuThreeStage {
            net,
            book,
            node,
            links,
            ghosts: StagedGhosts::default(),
            shells,
            ghost_in,
            owner_in,
            send_out,
            send_out_size: vec![full; 6],
            vcq,
            send_seq: 0,
            fallback_wanted: false,
            setup_cost,
            growth_events: 0,
            stats: OpStats::default(),
        }
    }

    /// Send the two payloads of sweep `dim`: ghost-side ops flow toward
    /// `links[dim][dir]`'s GhostIn, reverse ops toward OwnerIn. The
    /// receiver's buffer index encodes the *receiver-side* direction
    /// `1 - dir`.
    fn send_pair(
        &mut self,
        st: &mut RankState,
        op: Op,
        round: usize,
        dim: usize,
        payloads: &[Vec<f64>; 2],
    ) -> Result<(), TofuError> {
        let p = *self.net.params();
        let kind = match op {
            Op::Border | Op::Forward | Op::ForwardScalar => BufKind::GhostIn,
            _ => BufKind::OwnerIn,
        };
        let seq_base = self.send_seq;
        self.send_seq += 2;
        let mut now = st.clock;
        for (dir, payload) in payloads.iter().enumerate() {
            let link = self.links[dim][dir];
            let rx_idx = (dim * 2 + (1 - dir)) as u16;
            let (stadd, size) = self.book.lookup(link.rank as u32, kind, rx_idx, 0)?;
            let bytes = wire::frame_combined(payload);
            if bytes.len() > size {
                let new_size = bytes.len().next_power_of_two();
                let cost = self.net.grow_mem(link.node, stadd, new_size);
                now += 2.0 * p.wire_time(0, link.hops) + cost;
                self.book
                    .update_size(link.rank as u32, kind, rx_idx, 0, new_size);
                self.growth_events += 1;
                self.stats.growth(op, round);
            }
            now += p.pack_cost(bytes.len());
            self.stats.count(op, round, bytes.len());
            self.stats.copied(op, round, bytes.len());
            put_with_retry(
                &mut self.vcq,
                UtofuConfig::DEFAULT_RETRY_BUDGET,
                &mut self.stats,
                op,
                round,
                &mut self.fallback_wanted,
                &mut now,
                link.node,
                stadd,
                0,
                &bytes,
                rx_idx as u64,
                seq_base + 1 + dir as u64,
                true,
            );
        }
        st.charge(now - st.clock, op);
        Ok(())
    }

    /// Zero-copy variant of [`UtofuThreeStage::send_pair`] for the
    /// repeated ghost ops: payload sizes follow from the staged ghost
    /// layout, so each frame is serialized in place into this rank's
    /// registered `send_out` region and put straight from there — no
    /// staging copy, no pack cost, and `bytes_copied` stays 0. Border
    /// and exchange (which discover their payloads while packing) stay
    /// on the staged [`UtofuThreeStage::send_pair`] path, measured.
    fn send_pair_direct(
        &mut self,
        st: &mut RankState,
        op: Op,
        round: usize,
        dim: usize,
        swap: usize,
    ) -> Result<(), TofuError> {
        let p = *self.net.params();
        let kind = match op {
            Op::Forward | Op::ForwardScalar => BufKind::GhostIn,
            _ => BufKind::OwnerIn,
        };
        let seq_base = self.send_seq;
        self.send_seq += 2;
        let mut now = st.clock;
        for dir in 0..2 {
            let link = self.links[dim][dir];
            let rx_idx = (dim * 2 + (1 - dir)) as u16;
            let f64s = match op {
                Op::Forward => self.ghosts.forward_f64s(dim, swap, dir),
                Op::Reverse => self.ghosts.reverse_f64s(dim, swap, dir),
                Op::ForwardScalar => self.ghosts.scalar_f64s(dim, swap, dir, false),
                Op::ReverseScalar => self.ghosts.scalar_f64s(dim, swap, dir, true),
                _ => unreachable!("send_pair_direct handles only the ghost ops"),
            };
            let need = wire::combined_size(f64s);
            let (stadd, size) = self.book.lookup(link.rank as u32, kind, rx_idx, 0)?;
            if need > size {
                let new_size = need.next_power_of_two();
                let cost = self.net.grow_mem(link.node, stadd, new_size);
                now += 2.0 * p.wire_time(0, link.hops) + cost;
                self.book
                    .update_size(link.rank as u32, kind, rx_idx, 0, new_size);
                self.growth_events += 1;
                self.stats.growth(op, round);
            }
            let out = dim * 2 + dir;
            if need > self.send_out_size[out] {
                let new_size = need.next_power_of_two();
                now += self.net.grow_mem(self.node, self.send_out[out], new_size);
                self.send_out_size[out] = new_size;
            }
            let ghosts = &self.ghosts;
            let links = &self.links;
            let framed = self
                .net
                .write_local_with(self.node, self.send_out[out], 0, need, |buf| {
                    let mut w = wire::CombinedWriter::new(buf);
                    match op {
                        Op::Forward => {
                            ghosts.pack_forward_into(st, links, dim, swap, dir, &mut w);
                        }
                        Op::Reverse => ghosts.pack_reverse_into(st, dim, swap, dir, &mut w),
                        Op::ForwardScalar => {
                            ghosts.pack_forward_scalar_into(st, dim, swap, dir, &mut w);
                        }
                        Op::ReverseScalar => {
                            ghosts.pack_reverse_scalar_into(st, dim, swap, dir, &mut w);
                        }
                        _ => unreachable!("send_pair_direct handles only the ghost ops"),
                    }
                    w.finish()
                });
            self.stats.count(op, round, framed);
            put_region_with_retry(
                &mut self.vcq,
                UtofuConfig::DEFAULT_RETRY_BUDGET,
                &mut self.stats,
                op,
                round,
                &mut self.fallback_wanted,
                &mut now,
                link.node,
                stadd,
                0,
                self.send_out[out],
                0,
                framed,
                rx_idx as u64,
                seq_base + 1 + dir as u64,
                true,
            );
        }
        st.charge(now - st.clock, op);
        Ok(())
    }

    /// Wait for the two sweep-`dim` messages; returns `[from -dim, from
    /// +dim]` payloads.
    fn recv_pair(
        &mut self,
        st: &mut RankState,
        op: Op,
        dim: usize,
    ) -> Result<[Vec<f64>; 2], TofuError> {
        let p = *self.net.params();
        let bufs = match op {
            Op::Border | Op::Forward | Op::ForwardScalar => &self.ghost_in,
            _ => &self.owner_in,
        };
        let want = [bufs[dim * 2], bufs[dim * 2 + 1]];
        let (arrivals, t, anomalies) = wait_deduped(&self.net, self.node, st.clock, 2, |a| {
            a.stadd == want[0] || a.stadd == want[1]
        })?;
        self.stats.add_dup_drops(op, dim, anomalies.duplicates);
        self.stats.add_overwrites(op, dim, anomalies.overwrites);
        let mut out = [Vec::new(), Vec::new()];
        let mut unpack = 0usize;
        for a in &arrivals {
            let dir = usize::from(a.stadd == want[1]);
            let raw = self.net.read_local(self.node, a.stadd, a.offset, a.len);
            out[dir] = wire::parse_combined(&raw);
            unpack += a.len;
        }
        let poll = arrivals.len() as f64 * (p.cpu_per_put_utofu + 2.0 * p.mrq_match_per_buffer);
        st.charge(t - st.clock + poll + p.pack_cost(unpack), op);
        Ok(out)
    }
}

impl GhostEngine for UtofuThreeStage {
    fn name(&self) -> &'static str {
        "utofu-3stage"
    }

    fn rounds(&self, op: Op) -> usize {
        if op == Op::Exchange {
            3
        } else {
            3 * self.shells
        }
    }

    fn post(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Border => {
                if round == 0 {
                    self.ghosts.reset(st, self.shells);
                }
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.ghosts.pack_border(st, &self.links, dim, swap);
                self.send_pair(st, op, round, dim, &payloads)
            }
            Op::Forward | Op::ForwardScalar => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                self.send_pair_direct(st, op, round, dim, swap)
            }
            Op::Reverse | Op::ReverseScalar => {
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                self.send_pair_direct(st, op, round, dim, swap)
            }
            Op::Exchange => {
                let payloads = st.pack_exchange(round);
                self.send_pair(st, op, round, round, &payloads)
            }
        }
    }

    fn complete(&mut self, op: Op, round: usize, st: &mut RankState) -> Result<(), TofuError> {
        match op {
            Op::Border => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.recv_pair(st, op, dim)?;
                self.ghosts.unpack_border(st, dim, swap, &payloads);
                st.scalar.resize(st.atoms.ntotal(), 0.0);
            }
            Op::Exchange => {
                let payloads = self.recv_pair(st, op, round)?;
                for p in &payloads {
                    st.unpack_exchange(p);
                }
            }
            Op::Forward => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.recv_pair(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_forward(st, dim, swap, dir, &payloads[dir]);
                }
            }
            Op::ForwardScalar => {
                let (dim, swap) = round_to_sweep(round, self.shells);
                let payloads = self.recv_pair(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_forward_scalar(st, dim, swap, dir, &payloads[dir]);
                }
            }
            Op::Reverse => {
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                let payloads = self.recv_pair(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_reverse(st, dim, swap, dir, &payloads[dir]);
                }
            }
            Op::ReverseScalar => {
                let idx = 3 * self.shells - 1 - round;
                let (dim, swap) = round_to_sweep(idx, self.shells);
                let payloads = self.recv_pair(st, op, dim)?;
                for dir in 0..2 {
                    self.ghosts
                        .unpack_reverse_scalar(st, dim, swap, dir, &payloads[dir]);
                }
            }
        }
        Ok(())
    }

    fn setup_cost(&self) -> f64 {
        self.setup_cost
    }

    fn op_stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn fallback_requested(&self) -> bool {
        self.fallback_wanted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GhostEngine;
    use crate::topo_map::{Placement, RankMap};
    use tofumd_md::atom::Atoms;
    use tofumd_tofu::{wait_arrivals, NetParams};

    /// Full-machine fixture on one TofuD cell (48 ranks): ranks 0 and 1
    /// are x-face neighbors and hold one atom each near their shared face;
    /// every rank participates in the lockstep rounds.
    struct Fixture {
        net: Arc<TofuNet>,
        book: Arc<AddressBook>,
        map: RankMap,
        global: Box3,
        engines: Vec<UtofuP2p>,
        states: Vec<RankState>,
    }

    fn fixture(cfg: UtofuConfig) -> Fixture {
        let grid = tofumd_tofu::CellGrid::new([1, 1, 1]);
        let map = RankMap::new(grid, Placement::TopoAware);
        let rg = map.rank_grid;
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        let net = Arc::new(TofuNet::new(grid, NetParams::default()));
        let book = AddressBook::new();
        let plan_cfg = crate::plan::PlanConfig::NEWTON;
        let mut engines = Vec::new();
        let mut states = Vec::new();
        for r in 0..map.nranks() {
            let plan = crate::plan::CommPlan::build(r, &map, &global, 2.8, plan_cfg);
            let graph = CommGraph::from_grid(plan);
            let node = map.node_of(r);
            engines.push(UtofuP2p::new(
                net.clone(),
                book.clone(),
                &graph,
                node,
                0.8442,
                cfg,
            ));
            let atoms = match r {
                0 => {
                    let sub = graph.sub;
                    Atoms::from_positions(
                        vec![[sub.hi[0] - 0.5, sub.lo[1] + 5.0, sub.lo[2] + 5.0]],
                        1,
                    )
                }
                1 => {
                    let sub = graph.sub;
                    Atoms::from_positions(
                        vec![[sub.lo[0] + 0.5, sub.lo[1] + 5.0, sub.lo[2] + 5.0]],
                        1001,
                    )
                }
                _ => Atoms::default(),
            };
            states.push(RankState::new(atoms, graph));
        }
        Fixture {
            net,
            book,
            map,
            global,
            engines,
            states,
        }
    }

    fn drive(f: &mut Fixture, op: Op) {
        for (e, st) in f.engines.iter_mut().zip(f.states.iter_mut()) {
            e.post(op, 0, st).unwrap();
        }
        for (e, st) in f.engines.iter_mut().zip(f.states.iter_mut()) {
            e.complete(op, 0, st).unwrap();
        }
    }

    #[test]
    fn border_then_forward_under_prereg() {
        let mut f = fixture(UtofuConfig::pool6());
        drive(&mut f, Op::Border);
        // Rank 0 must hold rank 1's atom (Fig. 5: the lower rank holds).
        assert!(f.states[0].atoms.nghost() >= 1);
        let gidx = f.states[0].atoms.nlocal;
        assert_eq!(f.states[0].atoms.tag[gidx], 1001);
        let before = f.states[0].atoms.x[gidx];
        // Move rank 1's atom; the forward must write the new position
        // directly into rank 0's registered x-region.
        f.states[1].atoms.x[0][2] += 0.375;
        drive(&mut f, Op::Forward);
        let after = f.states[0].atoms.x[gidx];
        assert!((after[2] - before[2] - 0.375).abs() < 1e-12);
        // No buffer growth under pre-registration.
        assert_eq!(f.engines.iter().map(|e| e.growth_events).sum::<u64>(), 0);
    }

    #[test]
    fn reverse_accumulates_on_the_owner() {
        let mut f = fixture(UtofuConfig::coarse4());
        drive(&mut f, Op::Border);
        let n0 = f.states[0].atoms.nlocal;
        for gi in n0..f.states[0].atoms.ntotal() {
            f.states[0].atoms.f[gi] = [0.5, -1.0, 2.0];
        }
        f.states[1].atoms.zero_forces();
        drive(&mut f, Op::Reverse);
        assert!((f.states[1].atoms.f[0][0] - 0.5).abs() < 1e-12);
        assert!((f.states[1].atoms.f[0][2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_ops_roundtrip_and_book_into_pair_bucket() {
        let mut f = fixture(UtofuConfig::pool6());
        drive(&mut f, Op::Border);
        for st in f.states.iter_mut() {
            let n = st.atoms.ntotal();
            st.scalar.clear();
            st.scalar.resize(n, 0.0);
        }
        // Rank 1's local fp = 7.25 must reach its ghost copy on rank 0.
        f.states[1].scalar[0] = 7.25;
        drive(&mut f, Op::ForwardScalar);
        let gidx = f.states[0].atoms.nlocal;
        assert_eq!(f.states[0].scalar[gidx], 7.25);
        assert!(f.states[0].pair_comm_time > 0.0);
        // Ghost rho on rank 0 folds back into rank 1's local.
        f.states[0].scalar[gidx] = 0.125;
        f.states[1].scalar[0] = 1.0;
        drive(&mut f, Op::ReverseScalar);
        assert!((f.states[1].scalar[0] - 1.125).abs() < 1e-12);
    }

    #[test]
    fn zero_copy_ghost_ops_stage_no_bytes() {
        // The repeated ghost ops serialize frames in place inside the
        // registered send regions: wire bytes move, but `bytes_copied`
        // stays at zero on both the direct-x (pool6) and framed (coarse4)
        // variants. Border stays on the staged path and is measured.
        for cfg in [UtofuConfig::pool6(), UtofuConfig::coarse4()] {
            let mut f = fixture(cfg);
            drive(&mut f, Op::Border);
            for st in f.states.iter_mut() {
                let n = st.atoms.ntotal();
                st.scalar.clear();
                st.scalar.resize(n, 0.0);
            }
            drive(&mut f, Op::Forward);
            drive(&mut f, Op::ForwardScalar);
            drive(&mut f, Op::Reverse);
            drive(&mut f, Op::ReverseScalar);
            let mut total = OpStats::default();
            for e in &f.engines {
                total.merge(&e.op_stats());
            }
            let border = total.op_total(Op::Border);
            assert!(border.bytes_copied > 0, "staged border must count copies");
            for op in [
                Op::Forward,
                Op::ForwardScalar,
                Op::Reverse,
                Op::ReverseScalar,
            ] {
                let t = total.op_total(op);
                assert!(t.bytes > 0, "{op:?} must move wire bytes");
                assert_eq!(t.bytes_copied, 0, "{op:?} must not stage a copy");
            }
        }
    }

    #[test]
    fn round_robin_slots_rotate_across_ops() {
        let mut f = fixture(UtofuConfig::pool6());
        drive(&mut f, Op::Border);
        let seq_after_border = f.engines[0].seq;
        drive(&mut f, Op::Forward);
        drive(&mut f, Op::Reverse);
        // Each posted op advances the slot cursor once.
        assert_eq!(f.engines[0].seq, seq_after_border + 2);
        assert_eq!(f.engines[0].cfg.slots, 4);
    }

    #[test]
    fn single6_charges_vcq_driving_overhead() {
        // The same exchange costs more virtual time under 6 single-thread
        // VCQs than under the dedicated-TNI coarse binding (§4.2).
        let mut coarse = fixture(UtofuConfig::coarse4());
        let mut six = fixture(UtofuConfig::single6());
        drive(&mut coarse, Op::Border);
        drive(&mut six, Op::Border);
        drive(&mut coarse, Op::Forward);
        drive(&mut six, Op::Forward);
        let t4 = coarse.states[0].comm_time;
        let t6 = six.states[0].comm_time;
        assert!(t6 > t4, "6 VCQs single-thread {t6} must exceed 4TNI {t4}");
    }

    #[test]
    fn baseline_buffers_grow_on_oversized_payloads() {
        let mut f = fixture(UtofuConfig::coarse4());
        // Overstuff rank 1's sub-box so its border payload exceeds the
        // undersized baseline buffer on some link.
        let sub = f.states[1].graph.sub;
        let mut pos = Vec::new();
        for i in 0..600 {
            let t = i as f64 / 600.0;
            pos.push([sub.lo[0] + 0.01 + 2.0 * t, sub.lo[1] + 5.0, sub.lo[2] + 5.0]);
        }
        f.states[1].atoms = Atoms::from_positions(pos, 5000);
        drive(&mut f, Op::Border);
        let grown: u64 = f.engines.iter().map(|e| e.growth_events).sum();
        assert!(grown > 0, "dense border slab must trigger dynamic growth");
    }

    #[test]
    fn utofu_3stage_carries_ghosts_both_directions() {
        let grid = tofumd_tofu::CellGrid::new([1, 1, 1]);
        let map = RankMap::new(grid, Placement::TopoAware);
        let rg = map.rank_grid;
        let global = Box3::from_lengths([
            10.0 * f64::from(rg[0]),
            10.0 * f64::from(rg[1]),
            10.0 * f64::from(rg[2]),
        ]);
        let net = Arc::new(TofuNet::new(grid, NetParams::default()));
        let book = AddressBook::new();
        let mut engines = Vec::new();
        let mut states = Vec::new();
        for r in 0..map.nranks() {
            let plan = crate::plan::CommPlan::build(
                r,
                &map,
                &global,
                2.8,
                crate::plan::PlanConfig::NEWTON,
            );
            let graph = CommGraph::from_grid(plan);
            let node = map.node_of(r);
            engines.push(UtofuThreeStage::new(
                net.clone(),
                book.clone(),
                &map,
                &graph,
                node,
                0.8442,
                &global,
            ));
            let atoms = match r {
                0 => Atoms::from_positions(
                    vec![[
                        graph.sub.hi[0] - 0.5,
                        graph.sub.lo[1] + 5.0,
                        graph.sub.lo[2] + 5.0,
                    ]],
                    1,
                ),
                1 => Atoms::from_positions(
                    vec![[
                        graph.sub.lo[0] + 0.5,
                        graph.sub.lo[1] + 5.0,
                        graph.sub.lo[2] + 5.0,
                    ]],
                    1001,
                ),
                _ => Atoms::default(),
            };
            states.push(RankState::new(atoms, graph));
        }
        for round in 0..3 {
            for (e, st) in engines.iter_mut().zip(states.iter_mut()) {
                e.post(Op::Border, round, st).unwrap();
            }
            for (e, st) in engines.iter_mut().zip(states.iter_mut()) {
                e.complete(Op::Border, round, st).unwrap();
            }
        }
        // The staged pattern ships the *full* shell: both ranks see each
        // other's atom.
        let tags0: Vec<u64> = states[0].atoms.tag[states[0].atoms.nlocal..].to_vec();
        let tags1: Vec<u64> = states[1].atoms.tag[states[1].atoms.nlocal..].to_vec();
        assert!(tags0.contains(&1001), "rank 0 ghosts: {tags0:?}");
        assert!(tags1.contains(&1), "rank 1 ghosts: {tags1:?}");
    }

    #[test]
    fn single_receive_buffer_overwrites_under_overlap() {
        // §3.4's hazard, demonstrated with real bytes: two scalar stages
        // posted back-to-back *before* the receiver consumes. With 1 slot
        // the second put lands in the same registered buffer and destroys
        // the first payload; 4 round-robin slots keep them apart.
        let run = |slots: usize| -> f64 {
            let cfg = UtofuConfig {
                vcqs: 1,
                comm_threads: 1,
                prereg: false,
                slots,
                retry_budget: UtofuConfig::DEFAULT_RETRY_BUDGET,
            };
            let mut f = fixture(cfg);
            drive(&mut f, Op::Border);
            for st in f.states.iter_mut() {
                let n = st.atoms.ntotal();
                st.scalar.clear();
                st.scalar.resize(n, 0.0);
            }
            // Overlapped stages: rank 1 posts TWO forward-scalar stages
            // before rank 0 completes the first.
            f.states[1].scalar[0] = 111.0;
            for (e, st) in f.engines.iter_mut().zip(f.states.iter_mut()) {
                e.post(Op::ForwardScalar, 0, st).unwrap();
            }
            f.states[1].scalar[0] = 222.0;
            for (e, st) in f.engines.iter_mut().zip(f.states.iter_mut()) {
                e.post(Op::ForwardScalar, 0, st).unwrap();
            }
            // Rank 0 now completes the FIRST stage. It should read 111.
            // (complete() takes one generation of arrivals per link; with
            // two queued per link it reads whatever bytes sit in the
            // buffers the arrivals point to.)
            let n = f.states[0].graph.recv.len();
            let expected: Vec<Stadd> = f.engines[0]
                .ghost_in
                .bufs
                .iter()
                .flatten()
                .copied()
                .collect();
            let (arrivals, _) = wait_arrivals(&f.net, f.engines[0].node, 0.0, n, |a| {
                a.len > 0 && expected.contains(&a.stadd)
            });
            // Find the arrival from the link that carried rank 1's atom
            // (non-trivial payload: 9 or 17 bytes framed = 1 scalar).
            let a = arrivals
                .iter()
                .filter(|a| a.len > 8)
                .min_by(|x, y| x.time.total_cmp(&y.time))
                .expect("a non-empty scalar payload");
            let raw = f
                .net
                .read_local(f.engines[0].node, a.stadd, a.offset, a.len);
            wire::parse_combined(&raw)[0]
        };
        // One slot: the first-generation read observes the SECOND payload
        // (overwritten). Four slots: the first payload is intact.
        assert_eq!(run(1), 222.0, "1 buffer must exhibit the overwrite");
        assert_eq!(run(4), 111.0, "4 round-robin buffers prevent it");
    }

    #[test]
    fn address_book_miss_is_a_typed_error() {
        let book = AddressBook::new();
        let err = book
            .lookup(9, BufKind::GhostIn, 3, 1)
            .expect_err("empty book must miss");
        assert_eq!(
            err,
            TofuError::MissingBuffer {
                rank: 9,
                kind: "ghost-in",
                link: 3,
                slot: 1,
            }
        );
        assert!(err.to_string().contains("ghost-in"), "{err}");
    }

    #[test]
    fn setup_cost_scales_with_prereg() {
        let coarse = fixture(UtofuConfig::coarse4());
        let pool = fixture(UtofuConfig::pool6());
        let c: f64 = coarse.engines.iter().map(|e| e.setup_cost()).sum();
        let p: f64 = pool.engines.iter().map(|e| e.setup_cost()).sum();
        assert!(
            p > 2.0 * c,
            "prereg setup {p} should far exceed baseline {c}"
        );
        // Keep the fixture fields alive (silence dead-code in this test).
        let _ = (&coarse.net, &coarse.book, &coarse.map, &coarse.global);
    }
}
