//! Border binning (§3.5.2).
//!
//! To decide which neighbor sub-boxes a local atom must be sent to, the
//! baseline scans every neighbor's ghost slab per atom. The paper instead
//! divides the sub-box into a 3x3x3 grid of bins once per setup — a border
//! shell of thickness `r_ghost` plus the interior — and precomputes, per
//! bin, the set of neighbors whose ghost region the bin intersects. Packing
//! then classifies each atom with three comparisons and a table lookup.
//!
//! The O(1) bin table is exact only while the border shells of opposite
//! faces do not overlap (`r_ghost <= edge/2`) and all neighbors are one
//! shell out. The long-cutoff regimes of Fig. 15 (62/124 neighbors, cutoff
//! larger than the sub-box) fall back to an exact per-neighbor slab test.

use tofumd_md::domain::NeighborOffset;
use tofumd_md::region::Box3;

/// Atom -> target-neighbor classifier for border packing.
#[derive(Debug, Clone)]
pub struct BorderBins {
    sub: Box3,
    r_ghost: f64,
    mode: Mode,
}

#[derive(Debug, Clone)]
enum Mode {
    /// 3x3x3 bin lookup (the paper's optimization).
    Bins { targets: Vec<Vec<u16>> },
    /// Exact per-neighbor slab test (long-cutoff fallback).
    Exact { offsets: Vec<NeighborOffset> },
}

/// Classify one coordinate against the sub-box border shell:
/// 0 = within `r` of the low face, 2 = within `r` of the high face,
/// 1 = interior.
#[inline]
fn side(x: f64, lo: f64, hi: f64, r: f64) -> usize {
    if x < lo + r {
        0
    } else if x >= hi - r {
        2
    } else {
        1
    }
}

/// Geometric interior classification for comm/compute overlap: flag the
/// local atoms strictly farther than `r` from every face of `sub` (the
/// `side() == 1` zone of the border bins in all three dims). With
/// `r >= cutoff + skin`, such an atom is not sent to any neighbor and no
/// incoming ghost can fall within the neighbor-list cutoff of it, so its
/// CSR row and pair updates are computable before the halo arrives.
#[must_use]
pub fn interior_flags(x: &[[f64; 3]], nlocal: usize, sub: &Box3, r: f64) -> Vec<bool> {
    x[..nlocal]
        .iter()
        .map(|p| (0..3).all(|d| side(p[d], sub.lo[d], sub.hi[d], r) == 1))
        .collect()
}

/// Exact slab test: does the neighbor at `off` (possibly several shells
/// out) need an atom at `x`? The neighbor's box along dim d spans
/// `[lo + o*a, lo + (o+1)*a)`; it needs atoms within `r` of that box.
#[inline]
#[must_use]
pub fn slab_needs(x: &[f64; 3], sub: &Box3, r: f64, off: &NeighborOffset) -> bool {
    let a = sub.lengths();
    for d in 0..3 {
        let o = f64::from(off.d[d]);
        let ok = if off.d[d] > 0 {
            x[d] >= sub.hi[d] + (o - 1.0) * a[d] - r
        } else if off.d[d] < 0 {
            x[d] < sub.lo[d] + (o + 1.0) * a[d] + r
        } else {
            true
        };
        if !ok {
            return false;
        }
    }
    true
}

impl BorderBins {
    /// Build the classifier for the given neighbor offset set.
    ///
    /// Selects the O(1) bin table when it is exact (single-shell neighbors
    /// and non-overlapping border shells), otherwise the exact slab test.
    #[must_use]
    pub fn new(sub: Box3, r_ghost: f64, neighbors: &[NeighborOffset]) -> Self {
        assert!(r_ghost > 0.0);
        let min_edge = sub.lengths().iter().cloned().fold(f64::INFINITY, f64::min);
        let single_shell = neighbors.iter().all(|o| o.ring() <= 1);
        let mode = if single_shell && r_ghost <= 0.5 * min_edge {
            let mut targets = vec![Vec::new(); 27];
            for (bin, t) in targets.iter_mut().enumerate() {
                let b = [bin % 3, (bin / 3) % 3, bin / 9];
                'nb: for (k, off) in neighbors.iter().enumerate() {
                    for d in 0..3 {
                        let need = match off.d[d].signum() {
                            -1 => 0usize,
                            1 => 2,
                            _ => continue,
                        };
                        if b[d] != need {
                            continue 'nb;
                        }
                    }
                    t.push(k as u16);
                }
            }
            Mode::Bins { targets }
        } else {
            Mode::Exact {
                offsets: neighbors.to_vec(),
            }
        };
        BorderBins { sub, r_ghost, mode }
    }

    /// True when the O(1) bin table is in use (observable for the
    /// ablation bench).
    #[must_use]
    pub fn uses_bins(&self) -> bool {
        matches!(self.mode, Mode::Bins { .. })
    }

    /// Visit the indices of neighbors that need an atom at `x`.
    #[inline]
    pub fn for_each_target(&self, x: &[f64; 3], mut f: impl FnMut(u16)) {
        match &self.mode {
            Mode::Bins { targets } => {
                let bx = side(x[0], self.sub.lo[0], self.sub.hi[0], self.r_ghost);
                let by = side(x[1], self.sub.lo[1], self.sub.hi[1], self.r_ghost);
                let bz = side(x[2], self.sub.lo[2], self.sub.hi[2], self.r_ghost);
                for &k in &targets[bx + 3 * by + 9 * bz] {
                    f(k);
                }
            }
            Mode::Exact { offsets } => {
                for (k, off) in offsets.iter().enumerate() {
                    if slab_needs(x, &self.sub, self.r_ghost, off) {
                        f(k as u16);
                    }
                }
            }
        }
    }

    /// Collected targets of an atom (convenience for tests).
    #[must_use]
    pub fn targets_of(&self, x: &[f64; 3]) -> Vec<u16> {
        let mut out = Vec::new();
        self.for_each_target(x, |k| out.push(k));
        out
    }

    /// The baseline per-atom scan (ablation comparator): tests the atom
    /// against every neighbor's slab directly, regardless of mode.
    #[must_use]
    pub fn targets_naive(&self, x: &[f64; 3], neighbors: &[NeighborOffset]) -> Vec<u16> {
        let mut out = Vec::new();
        for (k, off) in neighbors.iter().enumerate() {
            if slab_needs(x, &self.sub, self.r_ghost, off) {
                out.push(k as u16);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tofumd_md::domain::neighbor_offsets;

    fn setup(half: bool) -> (BorderBins, Vec<NeighborOffset>) {
        let neighbors = neighbor_offsets(1, half);
        let sub = Box3::new([0.0; 3], [10.0; 3]);
        (BorderBins::new(sub, 2.0, &neighbors), neighbors)
    }

    #[test]
    fn interior_atom_goes_nowhere() {
        let (bins, _) = setup(false);
        assert!(bins.uses_bins());
        assert!(bins.targets_of(&[5.0, 5.0, 5.0]).is_empty());
    }

    #[test]
    fn face_atom_goes_to_one_neighbor() {
        let (bins, nbs) = setup(false);
        let t = bins.targets_of(&[0.5, 5.0, 5.0]); // low-x face only
        assert_eq!(t.len(), 1);
        assert_eq!(nbs[t[0] as usize].d, [-1, 0, 0]);
    }

    #[test]
    fn corner_atom_goes_to_seven_neighbors() {
        let (bins, _) = setup(false);
        // Corner bin: 3 faces + 3 edges + 1 corner = 7 targets.
        let t = bins.targets_of(&[9.9, 9.9, 9.9]);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn matches_naive_scan_everywhere() {
        let (bins, nbs) = setup(false);
        let mut probe = Vec::new();
        for &x in &[0.1, 1.9, 2.1, 5.0, 7.9, 8.1, 9.9] {
            for &y in &[0.5, 5.0, 9.5] {
                probe.push([x, y, 0.3]);
                probe.push([x, y, 5.0]);
                probe.push([x, y, 9.7]);
            }
        }
        for p in &probe {
            let mut fast = bins.targets_of(p);
            let mut slow = bins.targets_naive(p, &nbs);
            fast.sort_unstable();
            slow.sort_unstable();
            assert_eq!(fast, slow, "mismatch at {p:?}");
        }
    }

    #[test]
    fn half_neighbor_set_respected() {
        let (bins, nbs) = setup(true);
        assert_eq!(nbs.len(), 13);
        // +++ corner: the 7 all-non-negative offsets, all in the upper half.
        let t = bins.targets_of(&[9.9, 9.9, 9.9]);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn interior_flags_match_border_shell_complement() {
        let sub = Box3::new([0.0; 3], [10.0; 3]);
        let r = 2.0;
        let x = vec![
            [5.0, 5.0, 5.0],  // deep interior
            [2.0, 5.0, 5.0],  // exactly lo + r: interior (side uses x < lo + r)
            [1.99, 5.0, 5.0], // inside the low-x shell
            [5.0, 8.0, 5.0],  // exactly hi - r: in the shell (x >= hi - r)
            [5.0, 7.99, 5.0], // just inside
            [9.9, 9.9, 9.9],  // corner shell
            [3.0, 3.0, 3.0],  // ghost slot — must be ignored
        ];
        let flags = interior_flags(&x, 6, &sub, r);
        assert_eq!(flags, vec![true, true, false, false, true, false]);
        // Consistency with the bin classifier: interior atoms are exactly
        // the ones the border packer sends nowhere.
        let (bins, _) = setup(false);
        for (p, &f) in x[..6].iter().zip(&flags) {
            assert_eq!(bins.targets_of(p).is_empty(), f, "at {p:?}");
        }
    }

    #[test]
    fn oversized_cutoff_uses_exact_mode() {
        let neighbors = neighbor_offsets(1, false);
        let sub = Box3::new([0.0; 3], [2.0; 3]);
        let bins = BorderBins::new(sub, 5.0, &neighbors);
        assert!(!bins.uses_bins());
        // Cutoff exceeds the box: every atom is needed by every 1-shell
        // neighbor.
        assert_eq!(bins.targets_of(&[1.0, 1.0, 1.0]).len(), 26);
    }

    #[test]
    fn two_shell_slabs_are_exact() {
        // Sub-box edge 2, cutoff 3: shell-2 neighbors need atoms within
        // 3 - 2 = 1 of the matching face.
        let neighbors = neighbor_offsets(2, false);
        let sub = Box3::new([0.0; 3], [2.0; 3]);
        let bins = BorderBins::new(sub, 3.0, &neighbors);
        assert!(!bins.uses_bins());
        let k_pp = neighbors.iter().position(|o| o.d == [2, 0, 0]).unwrap() as u16;
        // x = 1.5: within 1 of the high face -> the (2,0,0) neighbor needs it.
        assert!(bins.targets_of(&[1.5, 1.0, 1.0]).contains(&k_pp));
        // x = 0.5: 2*a - r = 1.0 above it -> not needed by (2,0,0).
        assert!(!bins.targets_of(&[0.5, 1.0, 1.0]).contains(&k_pp));
        // But the (1,0,0) neighbor needs everything (cutoff > edge).
        let k_p = neighbors.iter().position(|o| o.d == [1, 0, 0]).unwrap() as u16;
        assert!(bins.targets_of(&[0.5, 1.0, 1.0]).contains(&k_p));
    }

    #[test]
    fn overlapping_shells_fall_back_to_exact() {
        // r > edge/2: an atom in the middle belongs to BOTH face slabs —
        // the 3-zone bin table cannot express that, so Exact mode must be
        // chosen and report both faces.
        let neighbors = neighbor_offsets(1, false);
        let sub = Box3::new([0.0; 3], [10.0; 3]);
        let bins = BorderBins::new(sub, 6.0, &neighbors);
        assert!(!bins.uses_bins());
        let t = bins.targets_of(&[5.0, 5.0, 5.0]);
        // The center atom is within 6.0 of all six faces.
        assert_eq!(t.len(), 26);
    }
}
