//! Property coverage of the mid-run rebalance migration: moving a system
//! from decomposition A to an arbitrary decomposition B over B's star
//! forest — with the transient symmetric migrate-peer set computed from
//! the destination matrix — conserves every atom and lands each one on
//! the rank B says owns it, in exactly one owner-directed round.

use proptest::prelude::*;
use std::sync::Arc;
use tofumd_core::engine::{wrap_for_exchange, RankState};
use tofumd_core::sf::rebalance_migrate_peers;
use tofumd_core::topo_map::{Placement, RankMap};
use tofumd_core::CommGraph;
use tofumd_md::atom::Atoms;
use tofumd_md::domain::RcbDecomposition;
use tofumd_md::region::Box3;
use tofumd_tofu::CellGrid;

const LENGTHS: [f64; 3] = [20.0, 16.0, 12.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rebalance_migration_conserves_atoms_and_matches_owner_of(
        unit_pts in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 240..241),
        drift in prop::collection::vec(prop::array::uniform3(-6.0f64..6.0), 240..241),
        nranks in 2usize..10,
        r_ghost in 1.0f64..2.5,
    ) {
        // A point cloud inside the box plus a bounded per-atom drift
        // (large enough to hop several sub-boxes and to cross periodic
        // faces).
        let pts: Vec<[f64; 3]> = unit_pts
            .iter()
            .map(|u| [u[0] * LENGTHS[0], u[1] * LENGTHS[1], u[2] * LENGTHS[2]])
            .collect();
        let map = RankMap::new(CellGrid::new([1, 1, 1]), Placement::TopoAware);
        prop_assert!(nranks <= map.nranks());
        let global = Box3::from_lengths(LENGTHS);

        // Decomposition A over the initial cloud; the atoms then drift.
        let a = RcbDecomposition::build(nranks, &pts, &global);
        let moved: Vec<[f64; 3]> = pts
            .iter()
            .zip(&drift)
            .map(|(p, d)| [p[0] + d[0], p[1] + d[1], p[2] + d[2]])
            .collect();
        let wrapped: Vec<[f64; 3]> = moved
            .iter()
            .map(|x| wrap_for_exchange(&global, *x))
            .collect();

        // Decomposition B over the drifted cloud, with its star forests.
        let b = Arc::new(RcbDecomposition::build(nranks, &wrapped, &global));
        let graphs: Vec<CommGraph> = (0..nranks)
            .map(|r| CommGraph::from_rcb(r, &b, &map, r_ghost))
            .collect();

        // Each rank holds its A-atoms at their drifted (unwrapped)
        // positions, under B's graph with the transient migrate peers.
        let mut needs: Vec<Vec<usize>> = vec![Vec::new(); nranks];
        for (x, w) in moved.iter().zip(&wrapped) {
            let src = a.owner_of(&wrap_for_exchange(&global, *x));
            let dst = b.owner_of(w);
            if src != dst {
                needs[src].push(dst);
            }
        }
        for d in &mut needs {
            d.sort_unstable();
            d.dedup();
        }
        let peer_lists = rebalance_migrate_peers(&needs, &map);
        let mut states: Vec<RankState> = (0..nranks)
            .map(|r| {
                let mut atoms = Atoms::default();
                for (i, x) in moved.iter().enumerate() {
                    if a.owner_of(&wrap_for_exchange(&global, *x)) == r {
                        atoms.push_local(*x, [0.0; 3], 1, i as u64 + 1);
                    }
                }
                RankState::new(
                    atoms,
                    graphs[r].clone().with_migrate_peers(peer_lists[r].clone()),
                )
            })
            .collect();
        let before: usize = states.iter().map(|s| s.atoms.nlocal).sum();
        prop_assert_eq!(before, pts.len());

        // One owner-directed round: every rank packs, every payload is
        // delivered to the matching peer.
        let payloads: Vec<Vec<Vec<f64>>> =
            states.iter_mut().map(RankState::pack_exchange_graph).collect();
        for (r, outs) in payloads.iter().enumerate() {
            let peers = peer_lists[r].clone();
            prop_assert_eq!(outs.len(), peers.len());
            for (p, payload) in peers.iter().zip(outs) {
                states[p.rank].unpack_exchange(payload);
            }
        }

        // Conservation: every tag survives exactly once.
        let mut tags: Vec<u64> = states
            .iter()
            .flat_map(|s| s.atoms.tag[..s.atoms.nlocal].to_vec())
            .collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (1..=pts.len() as u64).collect::<Vec<_>>());

        // Ownership: each rank agrees with B's owner_of for every atom it
        // now holds, and a second round is a fixed point.
        for st in &mut states {
            for i in 0..st.atoms.nlocal {
                let x = st.atoms.x[i];
                prop_assert!(st.graph.sub.contains(&x));
                prop_assert_eq!(st.graph.owner_of(&x), st.graph.me);
            }
            let again = st.pack_exchange_graph();
            prop_assert!(again.iter().all(Vec::is_empty));
        }
    }
}
